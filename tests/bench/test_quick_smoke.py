"""End-to-end bench smoke: ``python -m repro bench --quick`` must work.

Slow-marked (tens of seconds): runs the real harness at quick sizes and
checks the emitted document against the schema and the curated
experiment list.
"""

import json

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.runner import main
from repro.bench.schema import validate_bench

pytestmark = pytest.mark.slow


def test_quick_bench_writes_valid_document(tmp_path, capsys):
    out = tmp_path / "BENCH_smoke.json"
    assert main(["--quick", "--out", str(out)]) == 0
    document = json.loads(out.read_text())
    assert validate_bench(document) == []
    assert document["quick"] is True
    assert [e["name"] for e in document["experiments"]] == [
        e.name for e in EXPERIMENTS
    ]
    pairs = {s["name"] for s in document["speedups"]}
    assert pairs == {e.name for e in EXPERIMENTS if e.speedup_pair}
    for s in document["speedups"]:
        assert s["identical"] and s["oracle_ok"]
    # The quick run doubles as a self-diff fixture: comparing the file
    # against itself must pass and print a table.
    assert main(["--diff", str(out), str(out)]) == 0
    assert "PASS" in capsys.readouterr().out
