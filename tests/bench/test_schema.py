"""BENCH document schema: the committed baseline and synthetic violations."""

import json
import pathlib

import pytest

from repro.bench.schema import SCHEMA_VERSION, validate_bench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "BENCH_3.json"


def minimal_document():
    return {
        "schema": SCHEMA_VERSION,
        "machine": {
            "platform": "linux", "python": "3.12", "numpy": "2.0",
            "cpu_count": 8,
        },
        "kernels": True,
        "quick": False,
        "experiments": [
            {"name": "join", "n": 100, "p": 4, "seconds": 0.5,
             "L_max": 25, "rounds": 2, "out_size": 10},
        ],
        "speedups": [
            {"name": "join", "n": 100, "p": 4, "seconds_on": 0.1,
             "seconds_off": 1.0, "speedup": 10.0, "L_max": 25, "rounds": 2,
             "identical": True, "oracle_ok": True},
        ],
    }


class TestCommittedBaseline:
    def test_baseline_exists_and_validates(self):
        document = json.loads(BASELINE.read_text())
        assert validate_bench(document) == []

    def test_baseline_meets_speedup_acceptance(self):
        # The PR's acceptance bar: at least one recorded speedup pair at
        # n >= 1e5 with >= 10x, identical model costs, and a passing oracle.
        document = json.loads(BASELINE.read_text())
        assert any(
            s["n"] >= 100_000 and s["speedup"] >= 10.0
            and s["identical"] and s["oracle_ok"]
            for s in document["speedups"]
        ), [
            (s["name"], s["speedup"]) for s in document["speedups"]
        ]


class TestValidateBench:
    def test_minimal_document_valid(self):
        assert validate_bench(minimal_document()) == []

    def test_not_a_mapping(self):
        assert validate_bench([]) != []
        assert validate_bench(None) != []

    def test_wrong_schema_version(self):
        document = minimal_document()
        document["schema"] = "repro-bench/0"
        assert any("schema" in e for e in validate_bench(document))

    @pytest.mark.parametrize("field", ["machine", "kernels", "experiments"])
    def test_missing_top_level_field(self, field):
        document = minimal_document()
        del document[field]
        assert any(field in e for e in validate_bench(document))

    def test_empty_experiments_rejected(self):
        document = minimal_document()
        document["experiments"] = []
        assert validate_bench(document) != []

    def test_duplicate_experiment_names(self):
        document = minimal_document()
        document["experiments"] *= 2
        assert any("duplicate" in e for e in validate_bench(document))

    @pytest.mark.parametrize("field,bad", [
        ("seconds", "fast"), ("L_max", 2.5), ("rounds", -1), ("n", True),
    ])
    def test_bad_experiment_field(self, field, bad):
        document = minimal_document()
        document["experiments"][0][field] = bad
        assert validate_bench(document) != []

    def test_missing_experiment_field(self):
        document = minimal_document()
        del document["experiments"][0]["L_max"]
        assert any("L_max" in e for e in validate_bench(document))

    def test_bool_is_not_an_int(self):
        # bool is an int subclass; the schema must still reject it where
        # a count is expected (True would silently mean n=1).
        document = minimal_document()
        document["experiments"][0]["rounds"] = True
        assert validate_bench(document) != []

    def test_speedup_fields_checked(self):
        document = minimal_document()
        document["speedups"][0]["identical"] = "yes"
        assert validate_bench(document) != []
        document = minimal_document()
        del document["speedups"][0]["speedup"]
        assert validate_bench(document) != []

    def test_speedups_optional(self):
        document = minimal_document()
        del document["speedups"]
        assert validate_bench(document) == []


class TestScalingSection:
    def _scaling_record(self, **overrides):
        record = {
            "name": "hash_join_uniform", "n": 1000, "p": 8,
            "backend": "process", "workers": 4, "transport": "shm",
            "seconds": 0.5, "speedup": 2.0, "L_max": 100, "rounds": 1,
            "out_size": 50, "identical": True,
        }
        record.update(overrides)
        return record

    def test_valid_scaling_section(self):
        doc = minimal_document()
        doc["scaling"] = [self._scaling_record()]
        assert validate_bench(doc) == []

    def test_scaling_is_optional(self):
        assert validate_bench(minimal_document()) == []

    def test_missing_field_reported(self):
        doc = minimal_document()
        record = self._scaling_record()
        del record["transport"]
        doc["scaling"] = [record]
        assert any("transport" in e for e in validate_bench(doc))

    def test_unknown_backend_rejected(self):
        doc = minimal_document()
        doc["scaling"] = [self._scaling_record(backend="threads")]
        assert any("backend" in e for e in validate_bench(doc))

    def test_machine_backend_fields_validated_when_present(self):
        doc = minimal_document()
        doc["machine"]["backend"] = 42
        assert any("machine.backend" in e for e in validate_bench(doc))


class TestX7Section:
    """The planner predicted-vs-measured sweep (``bench --x7``)."""

    def _x7_record(self, **overrides):
        record = {
            "name": "two_way_zipf", "strategy": "skew", "n": 6000, "p": 16,
            "chosen": True, "predicted_load": 1357.8, "measured_load": 2282,
            "predicted_rounds": 1, "measured_rounds": 1, "ratio": 1.68,
            "seconds": 3.2, "out_size": 120,
        }
        record.update(overrides)
        return record

    def test_valid_x7_section(self):
        doc = minimal_document()
        doc["x7"] = [self._x7_record()]
        assert validate_bench(doc) == []

    def test_x7_is_optional(self):
        assert validate_bench(minimal_document()) == []

    def test_x7_must_be_a_list(self):
        doc = minimal_document()
        doc["x7"] = {"name": "two_way_zipf"}
        assert any("x7" in e for e in validate_bench(doc))

    def test_missing_field_reported(self):
        doc = minimal_document()
        record = self._x7_record()
        del record["predicted_load"]
        doc["x7"] = [record]
        assert any("predicted_load" in e for e in validate_bench(doc))

    def test_negative_measurement_rejected(self):
        doc = minimal_document()
        doc["x7"] = [self._x7_record(measured_load=-1)]
        assert any("measured_load" in e for e in validate_bench(doc))

    def test_chosen_must_be_bool(self):
        doc = minimal_document()
        doc["x7"] = [self._x7_record(chosen=1)]
        assert any("chosen" in e for e in validate_bench(doc))

    def test_duplicate_scenario_strategy_pair_rejected(self):
        doc = minimal_document()
        doc["x7"] = [self._x7_record(), self._x7_record(ratio=1.1)]
        assert any("duplicate" in e for e in validate_bench(doc))

    def test_same_scenario_different_strategy_allowed(self):
        doc = minimal_document()
        doc["x7"] = [
            self._x7_record(),
            self._x7_record(strategy="hash", chosen=False),
        ]
        assert validate_bench(doc) == []


class TestCommittedX7Baseline:
    """BENCH_7.json is the planner PR's committed artifact."""

    BASELINE_7 = REPO_ROOT / "BENCH_7.json"

    def test_baseline_exists_and_validates(self):
        document = json.loads(self.BASELINE_7.read_text())
        assert validate_bench(document) == []
        assert document["x7"], "x7 section must be non-empty"

    def test_no_strategy_exceeds_twice_its_prediction(self):
        # The PR's acceptance bar: measured load never exceeds 2x the
        # planner's prediction at the committed seeds.
        document = json.loads(self.BASELINE_7.read_text())
        offenders = [
            (r["name"], r["strategy"], r["ratio"])
            for r in document["x7"] if r["ratio"] > 2.0
        ]
        assert not offenders, offenders

    def test_every_scenario_has_exactly_one_chosen_strategy(self):
        document = json.loads(self.BASELINE_7.read_text())
        by_scenario = {}
        for record in document["x7"]:
            by_scenario.setdefault(record["name"], []).append(record["chosen"])
        for name, flags in by_scenario.items():
            assert sum(flags) == 1, (name, flags)


class TestX9Section:
    @staticmethod
    def _x9_record(**overrides):
        record = {
            "name": "hash_join_uniform", "n": 1000, "p": 8, "workers": 2,
            "queries": 8, "protocol": "resident", "seconds": 0.5,
            "queue_messages": 16, "snapshot_dispatches": 2,
            "shm_bytes_out": 4096, "pickle_bytes_out": 512,
            "dispatch_bytes_out": 4608, "resident_hits": 14,
            "resident_bytes_saved": 40_000, "fallback_dispatches": 0,
            "bytes_per_message": 288.0,
            "dispatch_ratio": 8.0, "pickle_ratio": 120.0, "identical": True,
        }
        record.update(overrides)
        return record

    def test_valid_x9_section(self):
        doc = minimal_document()
        doc["x9"] = [
            self._x9_record(),
            self._x9_record(protocol="snapshot", snapshot_dispatches=16),
        ]
        assert validate_bench(doc) == []

    def test_x9_must_be_a_list(self):
        doc = minimal_document()
        doc["x9"] = {"name": "oops"}
        assert any("x9" in e for e in validate_bench(doc))

    def test_x9_missing_field_rejected(self):
        doc = minimal_document()
        record = self._x9_record()
        del record["queue_messages"]
        doc["x9"] = [record]
        assert any("queue_messages" in e for e in validate_bench(doc))

    def test_x9_unknown_protocol_rejected(self):
        doc = minimal_document()
        doc["x9"] = [self._x9_record(protocol="telepathy")]
        assert any("protocol" in e for e in validate_bench(doc))

    def test_x9_duplicate_arm_rejected(self):
        doc = minimal_document()
        doc["x9"] = [self._x9_record(), self._x9_record()]
        assert any("duplicate" in e for e in validate_bench(doc))

    def test_x9_same_workload_both_protocols_allowed(self):
        doc = minimal_document()
        doc["x9"] = [
            self._x9_record(),
            self._x9_record(protocol="snapshot"),
        ]
        assert validate_bench(doc) == []


class TestCommittedX9Baseline:
    """BENCH_9.json is the dispatch-protocol PR's committed artifact."""

    BASELINE_9 = REPO_ROOT / "BENCH_9.json"

    def test_baseline_exists_and_validates(self):
        document = json.loads(self.BASELINE_9.read_text())
        assert validate_bench(document) == []
        assert document["x9"], "x9 section must be non-empty"

    def test_protocol_overhead_drops_at_least_5x(self):
        # The PR's acceptance bar: resident dispatch cuts both the
        # full-payload dispatch count and the pickled dispatch bytes by
        # at least 5x against the snapshot protocol, byte-identically.
        document = json.loads(self.BASELINE_9.read_text())
        resident = [r for r in document["x9"] if r["protocol"] == "resident"]
        assert resident, "no resident-arm records"
        for record in document["x9"]:
            assert record["identical"], record["name"]
        offenders = [
            (r["name"], r["dispatch_ratio"], r["pickle_ratio"])
            for r in resident
            if r["dispatch_ratio"] < 5.0 or r["pickle_ratio"] < 5.0
        ]
        assert not offenders, offenders

    def test_both_arms_present_per_workload(self):
        document = json.loads(self.BASELINE_9.read_text())
        by_workload = {}
        for record in document["x9"]:
            by_workload.setdefault(record["name"], set()).add(record["protocol"])
        for name, protocols in by_workload.items():
            assert protocols == {"resident", "snapshot"}, (name, protocols)


class TestX10Section:
    @staticmethod
    def _x10_record(**overrides):
        record = {
            "name": "semijoin_multi", "n": 60_000, "p": 8, "queries": 8,
            "seconds_on": 1.5, "seconds_off": 3.0, "speedup": 2.0,
            "hash_ops_on": 100_000, "hash_ops_off": 800_000,
            "hash_ops_ratio": 8.0, "partition_hits": 28, "view_hits": 28,
            "bytes_saved": 5_000_000, "identical": True,
        }
        record.update(overrides)
        return record

    def test_valid_x10_section(self):
        doc = minimal_document()
        doc["x10"] = [
            self._x10_record(),
            self._x10_record(name="multiround_sort", hash_ops_ratio=0.0,
                             hash_ops_off=0),
        ]
        assert validate_bench(doc) == []

    def test_x10_must_be_a_list(self):
        doc = minimal_document()
        doc["x10"] = {"name": "oops"}
        assert any("x10" in e for e in validate_bench(doc))

    def test_x10_missing_field_rejected(self):
        doc = minimal_document()
        record = self._x10_record()
        del record["hash_ops_ratio"]
        doc["x10"] = [record]
        assert any("hash_ops_ratio" in e for e in validate_bench(doc))

    def test_x10_duplicate_scenario_rejected(self):
        doc = minimal_document()
        doc["x10"] = [self._x10_record(), self._x10_record(speedup=1.1)]
        assert any("duplicate" in e for e in validate_bench(doc))

    def test_x10_negative_measurement_rejected(self):
        doc = minimal_document()
        doc["x10"] = [self._x10_record(seconds_on=-0.1)]
        assert any("seconds_on" in e for e in validate_bench(doc))

    def test_x10_identical_must_be_bool(self):
        doc = minimal_document()
        doc["x10"] = [self._x10_record(identical=1)]
        assert any("identical" in e for e in validate_bench(doc))


class TestCommittedX10Baseline:
    """BENCH_10.json is the memoization PR's committed artifact."""

    BASELINE_10 = REPO_ROOT / "BENCH_10.json"

    def test_baseline_exists_and_validates(self):
        document = json.loads(self.BASELINE_10.read_text())
        assert validate_bench(document) == []
        assert document["x10"], "x10 section must be non-empty"

    def test_memo_is_byte_identical_everywhere(self):
        document = json.loads(self.BASELINE_10.read_text())
        for record in document["x10"]:
            assert record["identical"], record["name"]

    def test_memo_pays_off_on_multiround_scenarios(self):
        # The PR's acceptance bar: at least two multi-round scenarios
        # where memoization both cuts wall time >= 1.5x and cuts hash
        # operations >= 5x against the memo-off arm.
        document = json.loads(self.BASELINE_10.read_text())
        strong = [
            r["name"]
            for r in document["x10"]
            if r["speedup"] >= 1.5 and r["hash_ops_ratio"] >= 5.0
        ]
        assert len(strong) >= 2, strong
