"""Tests for the two-way join planner."""

import pytest

from repro.data.generators import (
    single_value_relation,
    uniform_relation,
)
from repro.data.relation import Relation
from repro.planner.two_way import execute_two_way_join, plan_two_way_join


class TestPlanChoice:
    def test_uniform_picks_hash(self):
        r = uniform_relation("R", ["x", "y"], 400, 800, seed=1)
        s = uniform_relation("S", ["y", "z"], 400, 800, seed=2)
        plan = plan_two_way_join(r, s, p=8)
        assert plan.algorithm == "hash"

    def test_tiny_side_picks_broadcast(self):
        r = Relation("R", ["x", "y"], [(1, 2), (3, 4)])
        s = uniform_relation("S", ["y", "z"], 1000, 50, seed=3)
        plan = plan_two_way_join(r, s, p=8)
        assert plan.algorithm == "broadcast"
        assert plan.predicted_load == 2

    def test_skewed_picks_skew_join(self):
        r = single_value_relation("R", ["x", "y"], 200, "y")
        s = single_value_relation("S", ["y", "z"], 200, "y")
        plan = plan_two_way_join(r, s, p=8)
        assert plan.algorithm == "skew"

    def test_no_key_picks_cartesian(self):
        r = Relation("R", ["x"], [(1,), (2,)] * 50)
        s = Relation("S", ["z"], [(3,), (4,)] * 50)
        plan = plan_two_way_join(r, s, p=4)
        assert plan.algorithm == "cartesian"

    def test_describe_mentions_algorithm(self):
        r = uniform_relation("R", ["x", "y"], 100, 200, seed=4)
        s = uniform_relation("S", ["y", "z"], 100, 200, seed=5)
        plan = plan_two_way_join(r, s, p=4)
        assert plan.algorithm in plan.describe()


class TestExecution:
    def test_execute_matches_reference(self):
        r = uniform_relation("R", ["x", "y"], 300, 60, seed=6)
        s = uniform_relation("S", ["y", "z"], 300, 60, seed=7)
        plan, run = execute_two_way_join(r, s, p=8)
        assert sorted(run.output.rows()) == sorted(r.join(s).rows())

    def test_execute_each_branch(self):
        cases = [
            (  # broadcast
                Relation("R", ["x", "y"], [(1, 2)]),
                uniform_relation("S", ["y", "z"], 500, 40, seed=8),
                "broadcast",
            ),
            (  # skew
                single_value_relation("R", ["x", "y"], 100, "y"),
                single_value_relation("S", ["y", "z"], 100, "y"),
                "skew",
            ),
            (  # cartesian
                Relation("R", ["x"], [(i,) for i in range(20)]),
                Relation("S", ["z"], [(i,) for i in range(20)]),
                "cartesian",
            ),
        ]
        for r, s, expected in cases:
            plan, run = execute_two_way_join(r, s, p=8)
            assert plan.algorithm == expected
            assert sorted(run.output.rows()) == sorted(r.join(s).rows())

    def test_predicted_load_tracks_measured(self):
        r = uniform_relation("R", ["x", "y"], 800, 1600, seed=9)
        s = uniform_relation("S", ["y", "z"], 800, 1600, seed=10)
        plan, run = execute_two_way_join(r, s, p=8)
        assert run.load <= 3 * plan.predicted_load
        assert run.load >= plan.predicted_load / 3

    def test_planner_never_loses_badly(self):
        """The chosen algorithm is within 2x of the best of the menu."""
        from repro.joins import parallel_hash_join, skew_join, sort_join

        workloads = [
            (
                uniform_relation("R", ["x", "y"], 400, 800, seed=11),
                uniform_relation("S", ["y", "z"], 400, 800, seed=12),
            ),
            (
                single_value_relation("R", ["x", "y"], 150, "y"),
                single_value_relation("S", ["y", "z"], 150, "y"),
            ),
        ]
        for r, s in workloads:
            _, chosen = execute_two_way_join(r, s, p=8)
            menu = [
                parallel_hash_join(r, s, p=8).load,
                skew_join(r, s, p=8).load,
                sort_join(r, s, p=8).load,
            ]
            assert chosen.load <= 2 * min(menu)
