"""Property-based invariants of the adaptive planner (hypothesis).

Three laws the optimizer must satisfy on *every* input, not just the
canonical scenarios:

1. Optimality of the choice: the chosen candidate's predicted load is a
   lower bound on every other applicable candidate's.
2. Structural invariance: renaming relations or permuting atoms changes
   neither the chosen strategy nor its predicted load — the cost model
   reads cardinalities and degrees, never names or atom order.
3. Auto ≡ forced: executing ``strategy="auto"`` produces byte-identical
   rows and identical measured load to forcing the strategy the explain
   says it chose.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.planner.optimizer import execute_strategy, plan_and_execute, plan_query
from repro.query.parser import parse_query

# Small value domains force collisions (and thus occasional heavy
# hitters), so the generated corpus exercises skew and uniform branches.
_rows = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=40
)


def _instance(draw, query="R(x, y), S(y, z)"):
    cq = parse_query(query)
    relations = {}
    schemas = {"R": ["x", "y"], "S": ["y", "z"], "T": ["z", "x"]}
    for atom in cq.atoms:
        rows = draw(_rows)
        relations[atom.name] = Relation(atom.name, schemas[atom.name], rows)
    p = draw(st.sampled_from([2, 4, 8]))
    return cq, relations, p


@st.composite
def two_way_instances(draw):
    return _instance(draw)


@st.composite
def triangle_instances(draw):
    return _instance(draw, "R(x, y), S(y, z), T(z, x)")


class TestChosenIsCheapest:
    @settings(max_examples=40, deadline=None)
    @given(two_way_instances())
    def test_two_way(self, instance):
        cq, relations, p = instance
        explain = plan_query(cq, relations, p)
        chosen = explain.chosen_plan
        for cand in explain.candidates:
            if cand.applicable and cand.strategy != explain.chosen:
                assert chosen.predicted_load <= cand.predicted_load

    @settings(max_examples=15, deadline=None)
    @given(triangle_instances())
    def test_triangle(self, instance):
        cq, relations, p = instance
        explain = plan_query(cq, relations, p)
        chosen = explain.chosen_plan
        for cand in explain.candidates:
            if cand.applicable and cand.strategy != explain.chosen:
                assert chosen.predicted_load <= cand.predicted_load


class TestStructuralInvariance:
    @settings(max_examples=30, deadline=None)
    @given(two_way_instances())
    def test_relation_renaming(self, instance):
        cq, relations, p = instance
        baseline = plan_query(cq, relations, p)
        renamed_cq = parse_query("A(x, y), B(y, z)")
        renamed = {
            "A": Relation("A", ["x", "y"], relations["R"].rows()),
            "B": Relation("B", ["y", "z"], relations["S"].rows()),
        }
        other = plan_query(renamed_cq, renamed, p)
        assert other.chosen == baseline.chosen
        assert other.chosen_plan.predicted_load == pytest.approx(
            baseline.chosen_plan.predicted_load
        )

    @settings(max_examples=30, deadline=None)
    @given(two_way_instances())
    def test_atom_permutation(self, instance):
        cq, relations, p = instance
        baseline = plan_query(cq, relations, p)
        flipped = parse_query("S(y, z), R(x, y)")
        other = plan_query(flipped, relations, p)
        assert other.chosen == baseline.chosen
        assert other.chosen_plan.predicted_load == pytest.approx(
            baseline.chosen_plan.predicted_load
        )

    @settings(max_examples=10, deadline=None)
    @given(triangle_instances())
    def test_triangle_atom_rotation(self, instance):
        cq, relations, p = instance
        baseline = plan_query(cq, relations, p)
        rotated = parse_query("T(z, x), R(x, y), S(y, z)")
        other = plan_query(rotated, relations, p)
        assert other.chosen == baseline.chosen
        assert other.chosen_plan.predicted_load == pytest.approx(
            baseline.chosen_plan.predicted_load
        )


class TestAutoEqualsForced:
    @settings(max_examples=25, deadline=None)
    @given(two_way_instances())
    def test_two_way(self, instance):
        cq, relations, p = instance
        explain, executed, output, stats = plan_and_execute(cq, relations, p)
        assert executed == explain.chosen
        forced_output, forced_stats = execute_strategy(
            cq, relations, p, explain.chosen
        )
        assert output.rows() == forced_output.rows()
        assert stats.max_load == forced_stats.max_load
        assert stats.num_rounds == forced_stats.num_rounds
        # and both agree with the sequential oracle
        assert sorted(output.rows()) == sorted(cq.evaluate(relations).rows())

    @settings(max_examples=8, deadline=None)
    @given(triangle_instances())
    def test_triangle(self, instance):
        cq, relations, p = instance
        explain, executed, output, stats = plan_and_execute(cq, relations, p)
        assert executed == explain.chosen
        forced_output, forced_stats = execute_strategy(
            cq, relations, p, explain.chosen
        )
        assert output.rows() == forced_output.rows()
        assert stats.max_load == forced_stats.max_load
        assert sorted(output.rows()) == sorted(cq.evaluate(relations).rows())
