"""Tests for the multiway planner."""

import pytest

from repro.data.generators import uniform_relation
from repro.data.graphs import power_law_edges, random_edges, triangle_relations
from repro.data.relation import Relation
from repro.planner.multiway import execute_multiway_join, plan_multiway_join
from repro.query.cq import path_query, star_query, triangle_query


def triangle_rels(edges):
    r, s, t = triangle_relations(edges)
    return {"R": r, "S": s, "T": t}


class TestPlanChoice:
    def test_cyclic_uniform_picks_hypercube(self):
        rels = triangle_rels(random_edges(300, 60, seed=1))
        plan = plan_multiway_join(triangle_query(), rels, p=8)
        assert plan.algorithm == "hypercube"
        assert not plan.acyclic

    def test_cyclic_skewed_picks_skewhc(self):
        rels = triangle_rels(power_law_edges(400, 80, s=1.6, seed=2))
        plan = plan_multiway_join(triangle_query(), rels, p=8)
        assert plan.algorithm == "skewhc"
        assert plan.skewed

    def test_acyclic_small_out_picks_gym(self):
        q = path_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 200, 300, seed=i)
            for i in range(1, 4)
        }
        plan = plan_multiway_join(q, rels, p=16)
        assert plan.algorithm == "gym"
        assert plan.acyclic

    def test_acyclic_huge_out_picks_one_round(self):
        q = path_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 200, 300, seed=i)
            for i in range(1, 4)
        }
        # Inject a fake huge output estimate to flip the crossover.
        plan = plan_multiway_join(q, rels, p=16, out_estimate=10**9)
        assert plan.algorithm == "hypercube"

    def test_describe(self):
        rels = triangle_rels(random_edges(100, 30, seed=3))
        plan = plan_multiway_join(triangle_query(), rels, p=4)
        assert plan.algorithm in plan.describe()


class TestExecution:
    def test_each_branch_correct(self):
        q = triangle_query()
        cases = [
            triangle_rels(random_edges(200, 40, seed=4)),
            triangle_rels(power_law_edges(300, 70, s=1.5, seed=5)),
        ]
        for rels in cases:
            plan, run = execute_multiway_join(q, rels, p=8)
            expected = q.evaluate(rels)
            assert sorted(run.output.rows()) == sorted(expected.rows())

    def test_gym_branch_correct(self):
        # Path-3 has τ* = 2, so the one-round load is IN/√p and GYM's
        # (IN+OUT)/p wins for small outputs.
        q = path_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 150, 200, seed=i)
            for i in range(1, 4)
        }
        plan, run = execute_multiway_join(q, rels, p=8)
        assert plan.algorithm == "gym"
        expected = q.evaluate(rels)
        assert sorted(run.output.rows()) == sorted(expected.rows())

    def test_star_prefers_one_round(self):
        # Star queries have τ* = 1: HyperCube degenerates to the plain
        # hash join with L = IN/p, which no multi-round plan beats.
        q = star_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], 150, 200, seed=i)
            for i in range(1, 4)
        }
        plan, run = execute_multiway_join(q, rels, p=8)
        assert plan.algorithm == "hypercube"
        assert plan.tau_star == pytest.approx(1.0)
        expected = q.evaluate(rels)
        assert sorted(run.output.rows()) == sorted(expected.rows())

    def test_planner_beats_or_matches_wrong_choice(self):
        from repro.multiway import hypercube_join

        q = path_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 300, 500, seed=i)
            for i in range(1, 4)
        }
        plan, run = execute_multiway_join(q, rels, p=16)
        other = hypercube_join(q, rels, p=16)
        assert run.load <= other.load
