"""Error-path coverage for the cost-based optimizer.

Unknown strategy names, empty-relation statistics, and p=1 degenerate
grids — the paths a long-lived service actually exercises when tenants
send junk, tables are empty, or the cluster degenerates to one server.
"""

import pytest

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.planner.optimizer import (
    STRATEGIES,
    execute_strategy,
    plan_and_execute,
    plan_query,
    price_branches,
)
from repro.planner.statistics import collect_query_statistics
from repro.query.parser import parse_query

TWO_WAY = "Q(a, b, c) :- R(a, b), S(b, c)"
TRIANGLE = "Q(a, b, c) :- R(a, b), S(b, c), T(c, a)"


@pytest.fixture
def rels():
    return {
        "R": Relation("R", ["a", "b"], [(i, i % 3) for i in range(20)]),
        "S": Relation("S", ["b", "c"], [(i % 3, i) for i in range(15)]),
    }


@pytest.fixture
def empty_rels():
    return {
        "R": Relation("R", ["a", "b"], []),
        "S": Relation("S", ["b", "c"], []),
    }


# -------------------------------------------------------- unknown strategies


def test_execute_strategy_rejects_unknown_name(rels):
    with pytest.raises(QueryError, match="unknown strategy 'sideways'"):
        execute_strategy(TWO_WAY, rels, 4, "sideways")


def test_execute_strategy_error_lists_choices(rels):
    with pytest.raises(QueryError) as exc_info:
        execute_strategy(TWO_WAY, rels, 4, "nope")
    for name in STRATEGIES:
        assert name in str(exc_info.value)


def test_plan_and_execute_rejects_unknown_forced_strategy(rels):
    with pytest.raises(QueryError, match="unknown strategy"):
        plan_and_execute(TWO_WAY, rels, 4, strategy="bogus")


def test_explain_candidate_unknown_name_raises(rels):
    explain = plan_query(TWO_WAY, rels, 4)
    with pytest.raises(KeyError, match="bogus"):
        explain.candidate("bogus")


def test_strategy_inapplicable_to_query_shape(rels):
    # Single-atom queries only support scan; multi-atom never does.
    single = {"R": rels["R"]}
    with pytest.raises(QueryError, match="scan"):
        execute_strategy("Q(a, b) :- R(a, b)", single, 4, "hash")
    with pytest.raises(QueryError, match="single-atom"):
        execute_strategy(TWO_WAY, rels, 4, "scan")


# ---------------------------------------------------- empty-relation stats


def test_statistics_on_empty_relations(empty_rels):
    cq = parse_query(TWO_WAY)
    stats = collect_query_statistics(cq, empty_rels, 4)
    assert stats.in_size == 0
    assert stats.out_estimate == 0
    assert not stats.skewed


def test_plan_query_on_empty_relations_chooses_something(empty_rels):
    explain = plan_query(TWO_WAY, empty_rels, 4)
    assert explain.chosen in STRATEGIES
    assert explain.chosen_plan.predicted_load == 0.0


def test_execute_on_empty_relations_returns_empty(empty_rels):
    explain, executed, output, stats = plan_and_execute(
        TWO_WAY, empty_rels, 4
    )
    assert len(output) == 0
    assert stats.max_load == 0


def test_one_empty_one_full_join_is_empty(rels, empty_rels):
    mixed = {"R": rels["R"], "S": empty_rels["S"]}
    _, _, output, _ = plan_and_execute(TWO_WAY, mixed, 4)
    assert len(output) == 0


# ------------------------------------------------------- degenerate p = 1


def test_p1_two_way_executes_every_applicable_strategy(rels):
    explain = plan_query(TWO_WAY, rels, 1)
    reference = None
    for candidate in explain.candidates:
        if not candidate.applicable:
            continue
        output, stats = execute_strategy(
            TWO_WAY, rels, 1, candidate.strategy
        )
        rows = sorted(output.rows_readonly())
        if reference is None:
            reference = rows
        assert rows == reference
        # One server carries everything: L_max is the whole input+output.
        assert stats.max_load > 0


def test_p1_triangle_hypercube_grid_degenerates_cleanly(rels):
    triangle = dict(rels)
    triangle["T"] = Relation("T", ["c", "a"], [(i % 5, i % 4) for i in range(12)])
    explain, executed, output, stats = plan_and_execute(
        TRIANGLE, triangle, 1
    )
    assert executed in STRATEGIES
    assert stats.num_rounds >= 1


def test_invalid_p_rejected(rels):
    for bad in (0, -1):
        with pytest.raises(QueryError, match="at least one server"):
            plan_query(TWO_WAY, rels, bad)


def test_empty_query_unconstructible():
    # plan_query guards against empty queries, but the type system makes
    # them unbuildable in the first place.
    from repro.query.cq import ConjunctiveQuery

    with pytest.raises(QueryError, match="at least one atom"):
        ConjunctiveQuery([])


# --------------------------------------------------------- price_branches


def test_price_branches_requires_branches(rels):
    with pytest.raises(QueryError, match="at least one branch"):
        price_branches(TWO_WAY, [], 4)


def test_price_branches_sums_over_branches(rels):
    whole = plan_query(TWO_WAY, rels, 4)
    pricing = price_branches(TWO_WAY, [rels, rels], 4)
    assert pricing.branches == 2
    assert len(pricing.chosen) == 2
    assert pricing.predicted_load == pytest.approx(
        2 * (whole.chosen_plan.predicted_load or 0.0)
    )
    assert pricing.predicted_rounds >= 2 * (
        whole.chosen_plan.predicted_rounds or 0
    )
