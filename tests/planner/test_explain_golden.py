"""Golden explain traces for the adaptive planner.

The ``ExplainResult.describe()`` text is a debugging surface whose
layout — statistics line, candidate table, chosen summary — is part of
the contract. Each canonical workload's trace is committed verbatim
under ``goldens/`` and diffed in both kernel modes: planning reads only
statistics, so enabling or disabling the accelerated kernels must not
change a single byte of the plan.

To regenerate after an intentional cost-model change::

    PYTHONPATH=src python tests/planner/test_explain_golden.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data.generators import single_value_relation, uniform_relation
from repro.data.graphs import random_edges, triangle_relations
from repro.kernels.config import use_kernels
from repro.planner.optimizer import plan_query
from repro.query.parser import parse_query

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"


def _triangle_case():
    r, s, t = triangle_relations(random_edges(400, 60, seed=31))
    return "R(x, y), S(y, z), T(z, x)", {"R": r, "S": s, "T": t}


def _star_case():
    return "R(x, y), S(x, z), T(x, w)", {
        "R": uniform_relation("R", ("x", "y"), 400, 50, seed=41),
        "S": uniform_relation("S", ("x", "z"), 400, 50, seed=42),
        "T": uniform_relation("T", ("x", "w"), 400, 50, seed=43),
    }


def _chain_case():
    return "R(x, y), S(y, z), T(z, w)", {
        "R": uniform_relation("R", ("x", "y"), 300, 200, seed=51),
        "S": uniform_relation("S", ("y", "z"), 300, 200, seed=52),
        "T": uniform_relation("T", ("z", "w"), 300, 200, seed=53),
    }


def _skewed_join_case():
    return "R(x, y), S(y, z)", {
        "R": single_value_relation("R", ["x", "y"], 150, "y"),
        "S": single_value_relation("S", ["y", "z"], 150, "y"),
    }


CASES = {
    "triangle": _triangle_case,
    "star": _star_case,
    "chain": _chain_case,
    "skewed_join": _skewed_join_case,
}


def _trace(case: str) -> str:
    query, relations = CASES[case]()
    explain = plan_query(parse_query(query), relations, p=8, seed=7)
    return explain.describe() + "\n"


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("kernels", [False, True], ids=["python", "kernels"])
def test_explain_trace_matches_golden(case, kernels):
    golden = (GOLDEN_DIR / f"{case}.txt").read_text(encoding="utf-8")
    with use_kernels(kernels):
        assert _trace(case) == golden


def test_goldens_have_no_strays():
    """Every committed golden corresponds to a case (and vice versa)."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.txt")}
    assert on_disk == set(CASES)


if __name__ == "__main__":
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in sorted(CASES):
        path = GOLDEN_DIR / f"{name}.txt"
        path.write_text(_trace(name), encoding="utf-8")
        print(f"wrote {path}")
