"""Tests for the greedy join-order optimizer."""

import pytest

from repro.data.generators import uniform_relation
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.multiway.binary_plans import binary_join_plan
from repro.planner.join_order import estimate_join_size, greedy_join_order
from repro.query.cq import Atom, ConjunctiveQuery, path_query, triangle_query


class TestEstimate:
    def test_matches_actual_join(self):
        r = uniform_relation("R", ["x", "y"], 150, 30, seed=1)
        s = uniform_relation("S", ["y", "z"], 150, 30, seed=2)
        assert estimate_join_size(r, s) == len(r.join(s))

    def test_disjoint_is_product(self):
        r = Relation("R", ["x"], [(1,), (2,)])
        s = Relation("S", ["z"], [(1,)] * 5)
        assert estimate_join_size(r, s) == 10


class TestGreedyOrder:
    def test_covers_all_atoms_once(self):
        q = triangle_query()
        rels = {
            "R": uniform_relation("R", ["x", "y"], 100, 20, seed=1),
            "S": uniform_relation("S", ["y", "z"], 100, 20, seed=2),
            "T": uniform_relation("T", ["z", "x"], 100, 20, seed=3),
        }
        order = greedy_join_order(q, rels)
        assert sorted(order) == ["R", "S", "T"]

    def test_starts_with_cheapest_pair(self):
        # R1 ⋈ R2 is empty; any sane order starts with that pair.
        q = path_query(3)
        rels = {
            "R1": Relation("R1", ["A0", "A1"], [(i, i) for i in range(50)]),
            "R2": Relation("R2", ["A1", "A2"], [(1000 + i, i) for i in range(50)]),
            "R3": Relation(
                "R3", ["A2", "A3"], [(i % 5, j) for i in range(10) for j in range(10)]
            ),
        }
        order = greedy_join_order(q, rels)
        assert set(order[:2]) == {"R1", "R2"}

    def test_single_atom(self):
        q = ConjunctiveQuery([Atom("R", ["x"])])
        assert greedy_join_order(q, {"R": Relation("R", ["x"], [(1,)])}) == ["R"]

    def test_missing_relation_rejected(self):
        with pytest.raises(QueryError):
            greedy_join_order(triangle_query(), {})

    def test_order_beats_or_matches_default_on_lopsided_input(self):
        # Default order R1, R2, R3 materializes the huge R1 ⋈ R2 first;
        # greedy starts from the selective pair instead.
        q = path_query(3)
        hub_rows = [(i % 3, j % 3) for i in range(30) for j in range(3)]
        rels = {
            "R1": Relation("R1", ["A0", "A1"], hub_rows),
            "R2": Relation("R2", ["A1", "A2"], hub_rows),
            "R3": Relation("R3", ["A2", "A3"], [(0, 1)]),
        }
        default = binary_join_plan(q, rels, p=4)
        greedy = binary_join_plan(q, rels, p=4, order=greedy_join_order(q, rels))
        assert sorted(greedy.output.rows()) == sorted(default.output.rows())
        assert max(greedy.details["intermediate_sizes"]) <= max(
            default.details["intermediate_sizes"]
        )

    def test_disconnected_query_handled(self):
        q = ConjunctiveQuery([Atom("R", ["x"]), Atom("S", ["z"]), Atom("T", ["x", "z"])])
        rels = {
            "R": Relation("R", ["x"], [(1,), (2,)]),
            "S": Relation("S", ["z"], [(5,)]),
            "T": Relation("T", ["x", "z"], [(1, 5)]),
        }
        order = greedy_join_order(q, rels)
        run = binary_join_plan(q, rels, p=4, order=order)
        assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())
