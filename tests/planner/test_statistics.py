"""Tests for planner statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.planner.statistics import join_statistics


class TestJoinStatistics:
    def test_basic_profile(self):
        r = Relation("R", ["x", "y"], [(1, 2), (3, 2), (4, 5)])
        s = Relation("S", ["y", "z"], [(2, 0), (2, 1), (9, 9)])
        stats = join_statistics(r, s)
        assert stats.r_size == 3 and stats.s_size == 3
        assert stats.shared == ("y",)
        assert stats.out_size == 4  # y=2: 2x2
        assert stats.max_degree_r == 2
        assert stats.max_degree_s == 2
        assert stats.in_size == 6

    def test_no_shared_attrs_is_product(self):
        r = Relation("R", ["x"], [(1,), (2,)])
        s = Relation("S", ["z"], [(1,), (2,), (3,)])
        stats = join_statistics(r, s)
        assert stats.shared == ()
        assert stats.out_size == 6

    def test_empty_relations(self):
        r = Relation("R", ["x", "y"])
        s = Relation("S", ["y", "z"], [(1, 2)])
        stats = join_statistics(r, s)
        assert stats.out_size == 0
        assert stats.max_degree_r == 0

    def test_heavy_hitter_detection(self):
        r = Relation("R", ["x", "y"], [(i, 0) for i in range(10)])
        s = Relation("S", ["y", "z"], [(0, 0)])
        stats = join_statistics(r, s)
        assert stats.has_heavy_hitter(p=4)      # degree 10 ≥ 11/4
        assert not stats.has_heavy_hitter(p=1)  # threshold 11 > 10

    rows = st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30)

    @given(rows, rows)
    def test_out_size_matches_actual_join(self, r_rows, s_rows):
        r = Relation("R", ["x", "y"], r_rows)
        s = Relation("S", ["y", "z"], s_rows)
        assert join_statistics(r, s).out_size == len(r.join(s))
