"""Tests for planner statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.planner.statistics import (
    QueryStatistics,
    collect_query_statistics,
    join_statistics,
    relation_statistics,
)
from repro.query.parser import parse_query


def _relation_with_degree(name, attrs, size, degree, key_index=1):
    """``size`` rows where one join value occurs exactly ``degree`` times."""
    assert degree <= size
    rows = [(i, 0) for i in range(degree)]
    rows += [(1000 + i, 1 + i) for i in range(size - degree)]
    if key_index == 0:
        rows = [(b, a) for a, b in rows]
    return Relation(name, attrs, rows)


class TestJoinStatistics:
    def test_basic_profile(self):
        r = Relation("R", ["x", "y"], [(1, 2), (3, 2), (4, 5)])
        s = Relation("S", ["y", "z"], [(2, 0), (2, 1), (9, 9)])
        stats = join_statistics(r, s)
        assert stats.r_size == 3 and stats.s_size == 3
        assert stats.shared == ("y",)
        assert stats.out_size == 4  # y=2: 2x2
        assert stats.max_degree_r == 2
        assert stats.max_degree_s == 2
        assert stats.in_size == 6

    def test_no_shared_attrs_is_product(self):
        r = Relation("R", ["x"], [(1,), (2,)])
        s = Relation("S", ["z"], [(1,), (2,), (3,)])
        stats = join_statistics(r, s)
        assert stats.shared == ()
        assert stats.out_size == 6

    def test_empty_relations(self):
        r = Relation("R", ["x", "y"])
        s = Relation("S", ["y", "z"], [(1, 2)])
        stats = join_statistics(r, s)
        assert stats.out_size == 0
        assert stats.max_degree_r == 0

    def test_heavy_hitter_detection(self):
        r = Relation("R", ["x", "y"], [(i, 0) for i in range(10)])
        s = Relation("S", ["y", "z"], [(0, 0)])
        stats = join_statistics(r, s)
        assert stats.has_heavy_hitter(p=4)      # degree 10 ≥ 11/4
        assert not stats.has_heavy_hitter(p=1)  # threshold 11 > 10

    rows = st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30)

    @given(rows, rows)
    def test_out_size_matches_actual_join(self, r_rows, s_rows):
        r = Relation("R", ["x", "y"], r_rows)
        s = Relation("S", ["y", "z"], s_rows)
        assert join_statistics(r, s).out_size == len(r.join(s))


class TestHeavyHitterThresholdBoundary:
    """The paper's rule (arXiv:1401.1872): heavy iff frequency > m/p,
    with m the size of the relation the value appears in — NOT the
    combined input IN/p. These pin the boundary exactly; they fail
    against the old IN/p-relative implementation.
    """

    def test_exactly_m_over_p_is_not_heavy(self):
        # m=100, p=4: threshold 25. Degree exactly 25 is NOT heavy.
        r = _relation_with_degree("R", ["x", "y"], 100, 25)
        s = Relation("S", ["y", "z"], [(i, i) for i in range(100)])
        assert not join_statistics(r, s).has_heavy_hitter(p=4)

    def test_one_above_m_over_p_is_heavy(self):
        # Degree 26 > 100/4: heavy — even though the old IN/p threshold
        # (200/4 = 50) would have called this uniform.
        r = _relation_with_degree("R", ["x", "y"], 100, 26)
        s = Relation("S", ["y", "z"], [(i, i) for i in range(100)])
        assert join_statistics(r, s).has_heavy_hitter(p=4)

    def test_one_below_m_over_p_is_not_heavy(self):
        r = _relation_with_degree("R", ["x", "y"], 100, 24)
        s = Relation("S", ["y", "z"], [(i, i) for i in range(100)])
        assert not join_statistics(r, s).has_heavy_hitter(p=4)

    def test_threshold_is_per_relation_not_combined(self):
        # The heavy side is small next to its partner: degree 26 in a
        # 100-row R is heavy at p=4 (26 > 25) although the combined
        # input's IN/p = (100+900)/4 = 250 would miss it entirely.
        r = _relation_with_degree("R", ["x", "y"], 100, 26)
        s = Relation("S", ["y", "z"], [(i, i) for i in range(900)])
        assert join_statistics(r, s).has_heavy_hitter(p=4)

    def test_heavy_in_s_side_uses_s_size(self):
        r = Relation("R", ["x", "y"], [(i, 1000 + i) for i in range(400)])
        s = _relation_with_degree("S", ["y", "z"], 100, 26, key_index=0)
        assert join_statistics(r, s).has_heavy_hitter(p=4)
        s_ok = _relation_with_degree("S", ["y", "z"], 100, 25, key_index=0)
        assert not join_statistics(r, s_ok).has_heavy_hitter(p=4)

    def test_relation_statistics_same_boundary(self):
        heavy = _relation_with_degree("R", ["x", "y"], 100, 26)
        level = _relation_with_degree("R", ["x", "y"], 100, 25)
        assert relation_statistics(heavy, p=4).heavy_values("y") == (0,)
        assert relation_statistics(level, p=4).heavy_values("y") == ()

    def test_query_statistics_skewed_flag_same_boundary(self):
        cq = parse_query("R(x, y), S(y, z)")
        s = Relation("S", ["y", "z"], [(i, i) for i in range(100)])
        heavy = collect_query_statistics(
            cq, {"R": _relation_with_degree("R", ["x", "y"], 100, 26), "S": s},
            p=4,
        )
        level = collect_query_statistics(
            cq, {"R": _relation_with_degree("R", ["x", "y"], 100, 25), "S": s},
            p=4,
        )
        assert heavy.skewed and not level.skewed
        # Heavy joint degrees carry the summed cross-atom degree: 26
        # from R plus the single matching S tuple.
        assert heavy.heavy_joint_degrees["y"] == ((0, 27),)
        assert level.heavy_joint_degrees["y"] == ()


class TestQueryStatistics:
    def test_sampled_statistics_flagged_and_plausible(self):
        cq = parse_query("R(x, y), S(y, z)")
        r = Relation("R", ["x", "y"], [(i, i % 7) for i in range(600)])
        s = Relation("S", ["y", "z"], [(i % 7, i) for i in range(600)])
        stats = collect_query_statistics(cq, {"R": r, "S": s}, p=4, sample=200)
        assert stats.sampled
        assert stats.in_size == 1200
        # Every residue class has degree ~86 > 150/…? threshold 600/4:
        # none heavy; the sampled estimate must agree at this margin.
        assert not stats.skewed

    def test_out_estimate_override(self):
        cq = parse_query("R(x, y), S(y, z)")
        r = Relation("R", ["x", "y"], [(1, 1)])
        s = Relation("S", ["y", "z"], [(1, 2)])
        stats = collect_query_statistics(cq, {"R": r, "S": s}, p=2,
                                         out_estimate=99)
        assert stats.out_estimate == 99

    def test_statistics_are_frozen(self):
        stats = QueryStatistics(
            p=2, in_size=0, out_estimate=0, sizes={},
            heavy_join_values={}, max_joint_degree=0, per_relation=(),
        )
        with pytest.raises(AttributeError):
            stats.p = 4
