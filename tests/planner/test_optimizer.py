"""Unit tests for the cost-based adaptive planner."""

import pytest

from repro.data.generators import (
    single_value_relation,
    skewed_relation,
    uniform_relation,
)
from repro.data.graphs import random_edges, triangle_relations
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.planner.optimizer import (
    STRATEGIES,
    CandidatePlan,
    execute_strategy,
    plan_and_execute,
    plan_query,
)
from repro.query.parser import parse_query


def _two_way_uniform(n=600, domain=80):
    return {
        "R": uniform_relation("R", ("x", "y"), n, domain, seed=1),
        "S": uniform_relation("S", ("y", "z"), n, domain, seed=2),
    }


def _triangle(n=400, nodes=60, seed=5):
    r, s, t = triangle_relations(random_edges(n, nodes, seed=seed))
    return {"R": r, "S": s, "T": t}


class TestEnumeration:
    def test_every_strategy_appears_exactly_once(self):
        explain = plan_query("R(x, y), S(y, z)", _two_way_uniform(), p=8)
        names = [c.strategy for c in explain.candidates]
        assert names == list(STRATEGIES[1:])  # scan only for single atoms
        assert explain.chosen in names
        assert explain.candidate(explain.chosen).applicable

    def test_single_atom_is_scan(self):
        rel = uniform_relation("R", ("x", "y"), 50, 10, seed=3)
        explain = plan_query("R(x, y)", {"R": rel}, p=4)
        assert explain.chosen == "scan"
        assert [c.strategy for c in explain.candidates] == ["scan"]

    def test_unknown_candidate_lookup_raises(self):
        explain = plan_query("R(x, y), S(y, z)", _two_way_uniform(), p=8)
        with pytest.raises(KeyError):
            explain.candidate("nonsense")

    def test_empty_query_raises(self):
        # ConjunctiveQuery itself refuses zero atoms, so the planner's
        # own guard is a backstop; either way planning nothing is a
        # QueryError, never a silent empty plan.
        with pytest.raises(QueryError):
            plan_query(parse_query("R(x, y)").__class__([]), {}, p=4)

    def test_nonpositive_p_raises(self):
        with pytest.raises(QueryError):
            plan_query("R(x, y), S(y, z)", _two_way_uniform(), p=0)


class TestApplicability:
    def test_shared_variable_join_marks_cartesian_inapplicable(self):
        explain = plan_query("R(x, y), S(y, z)", _two_way_uniform(), p=8)
        cartesian = explain.candidate("cartesian")
        assert not cartesian.applicable
        assert "share variables" in cartesian.reason
        assert cartesian.predicted_load is None
        assert cartesian.envelope is None

    def test_disjoint_pair_marks_hash_family_inapplicable(self):
        rels = {
            "R": uniform_relation("R", ("a", "b"), 40, 10, seed=1),
            "S": uniform_relation("S", ("c", "d"), 40, 10, seed=2),
        }
        explain = plan_query("R(a, b), S(c, d)", rels, p=4)
        for name in ("broadcast", "hash", "skew"):
            assert not explain.candidate(name).applicable
        assert explain.candidate("cartesian").applicable

    def test_cyclic_query_marks_ghd_family_inapplicable(self):
        explain = plan_query("R(x, y), S(y, z), T(z, x)", _triangle(), p=8)
        for name in ("gym", "semijoin"):
            cand = explain.candidate(name)
            assert not cand.applicable and "cyclic" in cand.reason
        assert not explain.acyclic

    def test_skew_voids_hypercube_guarantee(self):
        rels = {
            "R": single_value_relation("R", ["x", "y"], 100, "y"),
            "S": single_value_relation("S", ["y", "z"], 100, "y"),
        }
        explain = plan_query("R(x, y), S(y, z)", rels, p=8)
        assert explain.statistics.skewed
        hypercube = explain.candidate("hypercube")
        assert not hypercube.applicable
        assert "heavy hitters" in hypercube.reason


class TestCanonicalChoices:
    def test_uniform_two_way_picks_hash(self):
        explain = plan_query("R(x, y), S(y, z)", _two_way_uniform(), p=8)
        assert explain.chosen == "hash"

    def test_tiny_side_picks_broadcast(self):
        rels = {
            "R": uniform_relation("R", ("x", "y"), 2000, 100, seed=1),
            "S": uniform_relation("S", ("y", "z"), 8, 100, seed=2),
        }
        assert plan_query("R(x, y), S(y, z)", rels, p=8).chosen == "broadcast"

    def test_single_value_join_picks_skew(self):
        rels = {
            "R": single_value_relation("R", ["x", "y"], 150, "y"),
            "S": single_value_relation("S", ["y", "z"], 150, "y"),
        }
        assert plan_query("R(x, y), S(y, z)", rels, p=8).chosen == "skew"

    def test_disjoint_pair_picks_cartesian(self):
        rels = {
            "R": uniform_relation("R", ("a", "b"), 60, 30, seed=1),
            "S": uniform_relation("S", ("c", "d"), 60, 30, seed=2),
        }
        assert plan_query("R(a, b), S(c, d)", rels, p=4).chosen == "cartesian"

    def test_uniform_triangle_picks_hypercube(self):
        explain = plan_query("R(x, y), S(y, z), T(z, x)", _triangle(), p=8)
        assert explain.chosen == "hypercube"

    def test_skewed_triangle_picks_skewhc(self):
        r = skewed_relation("R", ["x", "y"], 500, "y", universe=60, s=1.4, seed=3)
        s = skewed_relation("S", ["y", "z"], 500, "y", universe=60, s=1.4, seed=4)
        t = uniform_relation("T", ("z", "x"), 500, 60, seed=5)
        explain = plan_query(
            "R(x, y), S(y, z), T(z, x)", {"R": r, "S": s, "T": t}, p=8
        )
        assert explain.statistics.skewed
        assert explain.chosen == "skewhc"

    def test_chosen_minimizes_predicted_load(self):
        explain = plan_query("R(x, y), S(y, z)", _two_way_uniform(), p=8)
        chosen = explain.chosen_plan
        for cand in explain.candidates:
            if cand.applicable:
                assert chosen.predicted_load <= cand.predicted_load


class TestExecuteStrategy:
    def test_every_applicable_strategy_matches_oracle(self):
        cq = parse_query("R(x, y), S(y, z)")
        rels = _two_way_uniform(n=200, domain=30)
        expected = sorted(cq.evaluate(rels).rows())
        explain = plan_query(cq, rels, p=8)
        for cand in explain.candidates:
            if not cand.applicable:
                continue
            output, stats = execute_strategy(cq, rels, 8, cand.strategy)
            assert sorted(output.rows()) == expected, cand.strategy
            assert stats.num_rounds >= 1

    def test_unknown_strategy_raises(self):
        with pytest.raises(QueryError):
            execute_strategy("R(x, y), S(y, z)", _two_way_uniform(), 4, "magic")

    def test_shape_inapplicable_raises(self):
        rels = _two_way_uniform()
        with pytest.raises(QueryError):
            execute_strategy("R(x, y), S(y, z)", rels, 4, "cartesian")
        with pytest.raises(QueryError):
            execute_strategy("R(x, y), S(y, z)", rels, 4, "scan")
        with pytest.raises(QueryError):
            execute_strategy("R(x, y), S(y, z), T(z, x)", _triangle(), 4, "hash")
        with pytest.raises(QueryError):
            execute_strategy("R(x, y), S(y, z), T(z, x)", _triangle(), 4, "gym")

    def test_guarantee_inapplicable_still_runs(self):
        # HyperCube on skewed data loses its load guarantee but must
        # still execute correctly when forced.
        rels = {
            "R": single_value_relation("R", ["x", "y"], 60, "y"),
            "S": single_value_relation("S", ["y", "z"], 60, "y"),
        }
        cq = parse_query("R(x, y), S(y, z)")
        output, _ = execute_strategy(cq, rels, 8, "hypercube")
        assert sorted(output.rows()) == sorted(cq.evaluate(rels).rows())

    def test_plan_and_execute_auto_equals_forced(self):
        cq = parse_query("R(x, y), S(y, z)")
        rels = _two_way_uniform(n=300, domain=40)
        explain, executed, output, stats = plan_and_execute(cq, rels, 8)
        assert executed == explain.chosen
        forced_output, forced_stats = execute_strategy(
            cq, rels, 8, explain.chosen
        )
        assert output.rows() == forced_output.rows()
        assert stats.max_load == forced_stats.max_load


class TestExplainResult:
    def test_trace_contents(self):
        explain = plan_query("R(x, y), S(y, z)", _two_way_uniform(), p=8)
        text = explain.describe()
        assert "adaptive plan for R(x, y) ⋈ S(y, z)" in text
        assert "p=8" in text and "tau*=" in text and "lower bound" in text
        assert "<- chosen" in text
        for cand in explain.candidates:
            assert cand.strategy in text
        assert text.splitlines() == list(explain.trace)

    def test_lower_bound_below_chosen_prediction(self):
        explain = plan_query("R(x, y), S(y, z)", _two_way_uniform(), p=8)
        assert 0 < explain.lower_bound <= explain.chosen_plan.predicted_load

    def test_envelope_arithmetic(self):
        cand = CandidatePlan("hash", True, 100.0, 1, 4.0, 10.0)
        assert cand.envelope == 410.0
        assert cand.within_envelope(410.0)
        assert not cand.within_envelope(410.5)
