"""Tests for the `python -m repro` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import _EXPERIMENTS, main


class TestMainFunction:
    def test_list_returns_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("t1", "f7", "x1", "ablations"):
            assert experiment_id in out

    def test_unknown_id_errors(self, capsys):
        assert main(["run", "zz"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_one_experiment(self, capsys):
        assert main(["run", "f2"]) == 0
        out = capsys.readouterr().out
        assert "degree threshold" in out

    def test_every_id_has_a_bench_file(self):
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        for module in _EXPERIMENTS.values():
            assert (bench_dir / f"{module}.py").exists(), module


class TestSubprocess:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "bench_t1_cost_regimes" in result.stdout

    def test_requires_command(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode != 0
