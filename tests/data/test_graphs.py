"""Tests for graph workload generators and the triangle ground truth."""

import pytest

from repro.data.graphs import (
    count_triangles,
    planted_triangles,
    power_law_edges,
    random_edges,
    triangle_relations,
)
from repro.data.relation import Relation


class TestRandomEdges:
    def test_exact_count_and_distinct(self):
        e = random_edges(200, 50, seed=0)
        assert len(e) == 200
        assert len(set(e.rows())) == 200

    def test_too_many_edges_raises(self):
        with pytest.raises(ValueError):
            random_edges(200, 10, seed=0)

    def test_deterministic(self):
        assert random_edges(50, 30, seed=5).rows() == random_edges(50, 30, seed=5).rows()


class TestPowerLawEdges:
    def test_hub_vertices_exist(self):
        e = power_law_edges(500, 200, s=1.5, seed=0)
        out_degrees = e.degrees("u")
        # Vertex 0 is the heaviest rank; it should be a clear hub.
        assert out_degrees.get(0, 0) >= 5 * (len(e) / 200)


class TestPlantedTriangles:
    def test_count_matches_plant(self):
        edges, k = planted_triangles(7, 100, 200, seed=0)
        assert k == 21  # 3 rotations per planted 3-cycle
        assert count_triangles(edges) == 21

    def test_zero_triangles(self):
        edges, _ = planted_triangles(0, 50, 100, seed=0)
        assert count_triangles(edges) == 0

    def test_insufficient_vertices_raises(self):
        with pytest.raises(ValueError):
            planted_triangles(10, 0, 5)


class TestTriangleRelations:
    def test_schemas(self):
        e = Relation("E", ["u", "v"], [(0, 1), (1, 2), (2, 0)])
        r, s, t = triangle_relations(e)
        assert r.schema.attributes == ("x", "y")
        assert s.schema.attributes == ("y", "z")
        assert t.schema.attributes == ("z", "x")

    def test_three_way_join_counts_triangles(self):
        edges, k = planted_triangles(5, 60, 120, seed=1)
        r, s, t = triangle_relations(edges)
        j = r.join(s).join(t)
        assert len(j) == k == count_triangles(edges)


class TestCountTriangles:
    def test_single_directed_triangle_counted_three_times_rotations(self):
        # (a,b),(b,c),(c,a) closes the directed cycle once per starting vertex.
        e = Relation("E", ["u", "v"], [(0, 1), (1, 2), (2, 0)])
        assert count_triangles(e) == 3

    def test_no_triangle_in_dag(self):
        e = Relation("E", ["u", "v"], [(0, 1), (1, 2), (0, 2)])
        assert count_triangles(e) == 0
