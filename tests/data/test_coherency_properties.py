"""Property-based coherency of the dual-representation Relation.

A relation can be born row-primary (tuple constructor, ``wrap``) or
column-primary (``from_columns``), then suffer any interleaving of
mutations (``add``/``extend``), live-list borrowing with in-place edits,
accessor calls, and ``prime_columns`` hints. Whatever the history, two
invariants must hold at every step, in both kernel modes:

- ``rows_readonly()`` equals the shadow list of tuples the operations
  imply (the tuple view is the model's ground truth);
- ``columns()``, when it returns arrays at all, equals a fresh
  column extraction of that same shadow — never a stale snapshot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.kernels.columnar import key_columns
from repro.kernels.config import use_kernels

ARITY = 2

values = st.integers(min_value=-(2**40), max_value=2**40)
rows_st = st.tuples(*[values] * ARITY)


def _fresh_columns(rows):
    return key_columns(rows, range(ARITY))


def _check_coherent(rel, shadow):
    assert rel.rows_readonly() == shadow
    assert len(rel) == len(shadow)
    cols = rel.columns()
    expected = _fresh_columns(shadow)
    if expected is None:
        return  # nothing to compare; columns() may also be None
    if cols is None:
        return  # declining the fast path is always allowed
    assert [c.tolist() for c in cols] == [c.tolist() for c in expected]


# One operation = (tag, payload); payloads are drawn up front so the
# sequence is deterministic and shrinkable.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), rows_st),
        st.tuples(st.just("extend"), st.lists(rows_st, max_size=4)),
        st.tuples(st.just("set_inplace"), st.integers(0, 7), rows_st),
        st.tuples(st.just("append_inplace"), rows_st),
        st.tuples(st.just("columns"), st.just(None)),
        st.tuples(st.just("rows_readonly"), st.just(None)),
        st.tuples(st.just("prime"), st.just(None)),
    ),
    max_size=12,
)

starts = st.sampled_from(["tuples", "wrap", "from_columns"])


def _build(start, initial):
    if start == "from_columns":
        cols = [
            np.array([row[i] for row in initial], dtype=np.int64)
            for i in range(ARITY)
        ]
        return Relation.from_columns("R", ["x", "y"], cols)
    if start == "wrap":
        return Relation.wrap("R", ["x", "y"], list(initial))
    return Relation("R", ["x", "y"], initial)


@pytest.mark.parametrize("kernels", [True, False])
@settings(max_examples=120, deadline=None)
@given(
    start=starts,
    initial=st.lists(rows_st, max_size=6),
    ops=operations,
)
def test_any_interleaving_stays_coherent(kernels, start, initial, ops):
    with use_kernels(kernels):
        rel = _build(start, initial)
        shadow = list(initial)
        live = None  # alias obtained from rows(), like external callers keep
        _check_coherent(rel, shadow)
        for tag, *payload in ops:
            if tag == "add":
                rel.add(payload[0])
                shadow.append(payload[0])
            elif tag == "extend":
                rel.extend(payload[0])
                shadow.extend(payload[0])
            elif tag == "set_inplace":
                index, row = payload
                live = rel.rows()
                if live:
                    live[index % len(live)] = row
                    shadow[index % len(shadow)] = row
            elif tag == "append_inplace":
                live = rel.rows()
                live.append(payload[0])
                shadow.append(payload[0])
            elif tag == "columns":
                rel.columns()
            elif tag == "rows_readonly":
                rel.rows_readonly()
            elif tag == "prime":
                rel.prime_columns(_fresh_columns(rel.rows_readonly()))
            _check_coherent(rel, shadow)


@pytest.mark.parametrize("kernels", [True, False])
@settings(max_examples=60, deadline=None)
@given(initial=st.lists(rows_st, min_size=1, max_size=8))
def test_join_agrees_across_representations(kernels, initial):
    """Row-primary and column-primary builds of the same bag join alike."""
    with use_kernels(kernels):
        by_rows = Relation("R", ["x", "y"], initial)
        by_cols = _build("from_columns", initial)
        other = Relation("S", ["y", "z"], [(row[1], i) for i, row in enumerate(initial)])
        a = sorted(by_rows.join(other).rows_readonly())
        b = sorted(by_cols.join(other).rows_readonly())
        assert a == b
        assert sorted(by_rows.semijoin(other).rows_readonly()) == \
            sorted(by_cols.semijoin(other).rows_readonly())
        assert by_rows.sorted_by(["y", "x"]).rows_readonly() == \
            by_cols.sorted_by(["y", "x"]).rows_readonly()
