"""Tests for the star-schema warehouse generator."""

import pytest

from repro.data.warehouse import make_warehouse


class TestShape:
    def test_sizes(self):
        wh = make_warehouse(n_customers=100, n_orders=400, n_parts=50,
                            lineitems_per_order=2, seed=1)
        assert len(wh.customers) == 100
        assert len(wh.orders) == 400
        assert len(wh.lineitems) == 800
        assert len(wh.parts) == 50
        assert wh.total_tuples == 1350

    def test_relations_dict(self):
        wh = make_warehouse(seed=2)
        assert set(wh.relations()) == {"Customers", "Orders", "Lineitems", "Parts"}

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            make_warehouse(n_customers=0)


class TestReferentialIntegrity:
    def test_every_order_has_a_customer(self):
        wh = make_warehouse(n_customers=50, n_orders=300, seed=3)
        customers = set(wh.customers.column("cust"))
        assert set(wh.orders.column("cust")) <= customers

    def test_every_lineitem_resolves(self):
        wh = make_warehouse(n_orders=200, n_parts=30, seed=4)
        orders = set(wh.orders.column("order"))
        parts = set(wh.parts.column("part"))
        assert set(wh.lineitems.column("order")) <= orders
        assert set(wh.lineitems.column("part")) <= parts

    def test_join_loses_nothing(self):
        wh = make_warehouse(n_orders=200, seed=5)
        joined = wh.orders.join(wh.customers)
        assert len(joined) == len(wh.orders)


class TestSkew:
    def test_whale_customers_exist(self):
        wh = make_warehouse(n_customers=200, n_orders=4000,
                            customer_skew=1.5, seed=6)
        degrees = wh.orders.degrees("cust")
        top = degrees.most_common(1)[0][1]
        assert top > 5 * 4000 / 200  # far above uniform

    def test_zero_skew_is_flat(self):
        wh = make_warehouse(n_customers=100, n_orders=4000,
                            customer_skew=0.0, seed=7)
        degrees = wh.orders.degrees("cust")
        assert max(degrees.values()) < 3 * 4000 / 100

    def test_deterministic(self):
        a = make_warehouse(seed=8)
        b = make_warehouse(seed=8)
        assert a.orders.rows() == b.orders.rows()
        assert a.lineitems.rows() == b.lineitems.rows()


class TestEndToEnd:
    def test_engine_runs_warehouse_queries(self):
        from repro import Engine

        wh = make_warehouse(n_customers=80, n_orders=600, n_parts=40, seed=9)
        engine = Engine(p=8)
        for rel in wh.relations().values():
            engine.register(rel)
        result = engine.query("Orders(order, cust, month), Customers(cust, region, segment)")
        assert len(result.output) == len(wh.orders)

    def test_group_by_on_warehouse(self):
        from repro.multiway.aggregate import reference_group_by, two_phase_group_by

        wh = make_warehouse(n_orders=500, seed=10)
        out, _ = two_phase_group_by(wh.orders, ["cust"], "month", len, sum, p=8)
        ref = reference_group_by(wh.orders, ["cust"], "month", len)
        assert sorted(out.rows()) == sorted(ref.rows())
