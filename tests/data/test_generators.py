"""Tests for the synthetic workload generators."""

from collections import Counter

import pytest

from repro.data.generators import (
    matching_relation,
    regular_degree_relation,
    relation_with_planted_output,
    single_value_relation,
    skewed_relation,
    uniform_relation,
)
from repro.data.zipf import ZipfSampler, degree_sequence, zipf_values


class TestUniformRelation:
    def test_size_and_schema(self):
        r = uniform_relation("R", ["x", "y"], 100, universe=50, seed=1)
        assert len(r) == 100
        assert r.schema.attributes == ("x", "y")

    def test_values_in_universe(self):
        r = uniform_relation("R", ["x"], 200, universe=10, seed=2)
        assert all(0 <= t[0] < 10 for t in r)

    def test_deterministic_given_seed(self):
        a = uniform_relation("R", ["x", "y"], 50, 100, seed=3)
        b = uniform_relation("R", ["x", "y"], 50, 100, seed=3)
        assert a.rows() == b.rows()

    def test_different_seeds_differ(self):
        a = uniform_relation("R", ["x", "y"], 50, 10**6, seed=3)
        b = uniform_relation("R", ["x", "y"], 50, 10**6, seed=4)
        assert a.rows() != b.rows()


class TestMatchingRelation:
    def test_every_value_once(self):
        r = matching_relation("R", ["x", "y"], 10)
        assert r.degrees("x") == Counter({i: 1 for i in range(10)})
        assert all(t[0] == t[1] for t in r)


class TestRegularDegreeRelation:
    def test_exact_degree(self):
        r = regular_degree_relation("R", ["x", "y"], 30, "y", degree=3, seed=0)
        assert len(r) == 30
        assert set(r.degrees("y").values()) == {3}

    def test_other_attributes_unique(self):
        r = regular_degree_relation("R", ["x", "y"], 30, "y", degree=3, seed=0)
        xs = r.column("x")
        assert len(set(xs)) == len(xs)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            regular_degree_relation("R", ["x", "y"], 10, "y", degree=3)

    def test_nonpositive_degree_raises(self):
        with pytest.raises(ValueError):
            regular_degree_relation("R", ["x", "y"], 10, "y", degree=0)


class TestSkewedRelation:
    def test_zipf_concentrates_on_low_ranks(self):
        r = skewed_relation("R", ["x", "y"], 5000, "y", universe=1000, s=1.2, seed=0)
        degrees = r.degrees("y")
        top = degrees.most_common(1)[0]
        assert top[0] < 10  # heaviest value is a low rank
        assert top[1] > 5000 / 1000 * 20  # far above the uniform expectation

    def test_zero_skew_is_roughly_uniform(self):
        r = skewed_relation("R", ["x", "y"], 5000, "y", universe=50, s=0.0, seed=0)
        degrees = r.degrees("y")
        assert max(degrees.values()) < 3 * 5000 / 50


class TestSingleValueRelation:
    def test_all_tuples_share_key(self):
        r = single_value_relation("R", ["x", "y"], 20, "y", value=7)
        assert set(r.column("y")) == {7}
        assert len(set(r.column("x"))) == 20


class TestPlantedOutput:
    def test_join_size_close_to_requested(self):
        r, s = relation_with_planted_output("R", "S", "y", n=1000, out_pairs=400)
        out = len(r.join(s))
        assert out == 400  # isqrt(400)**2

    def test_filler_does_not_join(self):
        r, s = relation_with_planted_output("R", "S", "y", n=100, out_pairs=0)
        assert len(r.join(s)) == 0

    def test_too_large_out_raises(self):
        with pytest.raises(ValueError):
            relation_with_planted_output("R", "S", "y", n=10, out_pairs=10**6)


class TestZipf:
    def test_sampler_bounds(self):
        vals = ZipfSampler(100, 1.0, seed=0).sample(1000)
        assert vals.min() >= 0 and vals.max() < 100

    def test_zipf_values_list(self):
        vals = zipf_values(100, 50, 1.0, seed=1)
        assert len(vals) == 100 and all(isinstance(v, int) for v in vals)

    def test_degree_sequence_sums_to_n(self):
        seq = degree_sequence(1000, 10, 1.5)
        assert abs(sum(seq) - 1000) < 1e-6
        assert seq == sorted(seq, reverse=True)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0)
