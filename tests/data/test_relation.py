"""Unit and property tests for repro.data.relation."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.relation import Relation, union_all
from repro.errors import SchemaError


@pytest.fixture
def r():
    return Relation("R", ["x", "y"], [(1, 2), (1, 3), (2, 3)])


@pytest.fixture
def s():
    return Relation("S", ["y", "z"], [(2, 10), (3, 11), (3, 12), (4, 13)])


class TestRelationBasics:
    def test_len_and_iter(self, r):
        assert len(r) == 3
        assert list(r) == [(1, 2), (1, 3), (2, 3)]

    def test_arity_checked_on_init(self):
        with pytest.raises(SchemaError):
            Relation("R", ["x", "y"], [(1,)])

    def test_arity_checked_on_add(self, r):
        with pytest.raises(SchemaError):
            r.add((1, 2, 3))

    def test_add_and_extend(self, r):
        r.add((5, 6))
        r.extend([(7, 8)])
        assert len(r) == 5

    def test_bag_equality(self):
        a = Relation("A", ["x"], [(1,), (1,), (2,)])
        b = Relation("B", ["x"], [(2,), (1,), (1,)])
        assert a == b  # name does not matter, multiset does
        c = Relation("C", ["x"], [(1,), (2,)])
        assert a != c

    def test_contains(self, r):
        assert (1, 2) in r
        assert (9, 9) not in r


class TestRelationOperations:
    def test_project_keeps_duplicates(self, r):
        p = r.project(["x"])
        assert p.rows() == [(1,), (1,), (2,)]
        assert p.schema.attributes == ("x",)

    def test_project_reorders(self, r):
        p = r.project(["y", "x"])
        assert p.rows()[0] == (2, 1)

    def test_distinct(self):
        a = Relation("A", ["x"], [(1,), (1,), (2,)])
        assert a.distinct().rows() == [(1,), (2,)]

    def test_select(self, r):
        assert r.select(lambda t: t[0] == 1).rows() == [(1, 2), (1, 3)]

    def test_select_eq(self, r):
        assert r.select_eq("y", 3).rows() == [(1, 3), (2, 3)]

    def test_rename_copies_row_list(self, r):
        q = r.rename({"x": "u"})
        assert q.schema.attributes == ("u", "y")
        # The row list is copied (mutating the rename must not leak into
        # the original) while the tuples themselves are shared.
        assert q.rows() == r.rows()
        assert q.rows() is not r.rows()
        q.add((9, 9))
        assert len(r) == 3

    def test_key_and_column(self, r):
        assert r.key(["y"]) == [(2,), (3,), (3,)]
        assert r.column("y") == [2, 3, 3]

    def test_degrees(self, r):
        assert r.degrees("y") == Counter({3: 2, 2: 1})

    def test_heavy_hitters(self, r):
        assert r.heavy_hitters("y", 2) == {3}
        assert r.heavy_hitters("y", 3) == set()

    def test_sorted_by(self, s):
        assert s.sorted_by(["z"]).rows() == sorted(s.rows(), key=lambda t: t[1])


class TestJoin:
    def test_natural_join(self, r, s):
        j = r.join(s)
        assert j.schema.attributes == ("x", "y", "z")
        assert sorted(j.rows()) == [
            (1, 2, 10),
            (1, 3, 11),
            (1, 3, 12),
            (2, 3, 11),
            (2, 3, 12),
        ]

    def test_join_no_shared_attributes_is_product(self):
        a = Relation("A", ["x"], [(1,), (2,)])
        b = Relation("B", ["y"], [(10,), (20,)])
        j = a.join(b)
        assert len(j) == 4

    def test_join_with_empty(self, r):
        empty = Relation("S", ["y", "z"])
        assert len(r.join(empty)) == 0

    def test_semijoin(self, r, s):
        assert r.semijoin(s).rows() == [(1, 2), (1, 3), (2, 3)]
        small = Relation("S", ["y", "z"], [(3, 1)])
        assert r.semijoin(small).rows() == [(1, 3), (2, 3)]

    def test_semijoin_no_shared_attrs(self, r):
        nonempty = Relation("B", ["w"], [(1,)])
        empty = Relation("B", ["w"], [])
        assert len(r.semijoin(nonempty)) == len(r)
        assert len(r.semijoin(empty)) == 0


class TestUnionAll:
    def test_concatenates(self):
        a = Relation("A", ["x"], [(1,)])
        b = Relation("B", ["x"], [(2,), (2,)])
        u = union_all("U", [a, b])
        assert u.rows() == [(1,), (2,), (2,)]

    def test_schema_mismatch_raises(self):
        a = Relation("A", ["x"], [(1,)])
        b = Relation("B", ["y"], [(2,)])
        with pytest.raises(SchemaError):
            union_all("U", [a, b])

    def test_empty_list_raises(self):
        with pytest.raises(SchemaError):
            union_all("U", [])


small_rows = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40
)


class TestJoinProperties:
    @given(small_rows, small_rows)
    def test_join_matches_nested_loop(self, r_rows, s_rows):
        """Hash-index join must agree with the brute-force definition."""
        r = Relation("R", ["x", "y"], r_rows)
        s = Relation("S", ["y", "z"], s_rows)
        expected = sorted(
            (x, y, z) for (x, y) in r_rows for (y2, z) in s_rows if y == y2
        )
        assert sorted(r.join(s).rows()) == expected

    @given(small_rows, small_rows)
    def test_semijoin_is_filter_of_join(self, r_rows, s_rows):
        r = Relation("R", ["x", "y"], r_rows)
        s = Relation("S", ["y", "z"], s_rows)
        joined_keys = {t[:2] for t in r.join(s).rows()}
        assert sorted(r.semijoin(s).rows()) == sorted(
            t for t in r_rows if t in joined_keys
        )

    @given(small_rows)
    def test_project_then_distinct_size(self, rows):
        r = Relation("R", ["x", "y"], rows)
        assert len(r.project(["x"]).distinct()) == len({t[0] for t in rows})
