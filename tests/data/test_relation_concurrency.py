"""Regression tests for the Relation concurrency contract.

The module docstring of :mod:`repro.data.relation` promises that
concurrent *readers* are safe — including racing lazy derivations
(column-primary rows, row-primary column caches) and the ``rows()``
borrow/demote transition. These tests hammer those paths from many
barrier-started threads; before the internal lock, racing
``_materialize``/``columns`` calls could observe half-built caches or
double-derive into inconsistent state.
"""

import threading

import numpy as np

from repro.data.relation import Relation


def hammer(n_threads, fn):
    barrier = threading.Barrier(n_threads)
    outcomes = [None] * n_threads
    errors = []

    def worker(index):
        try:
            barrier.wait(timeout=10)
            outcomes[index] = fn(index)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return outcomes


def test_concurrent_row_derivation_from_columns():
    """Racing lazy row materialization on a column-primary relation."""
    rel = Relation.from_columns(
        "R", ["a", "b"],
        [np.arange(5000), np.arange(5000) % 17],
    )
    expected = [(int(i), int(i % 17)) for i in range(5000)]

    outcomes = hammer(8, lambda i: list(rel.rows_readonly()))
    assert all(rows == expected for rows in outcomes)


def test_concurrent_column_derivation_from_rows():
    """Racing lazy column extraction on a row-primary relation."""
    rel = Relation("R", ["a", "b"], [(i, i % 13) for i in range(4000)])
    expected_a = list(range(4000))

    def read(index):
        cols = rel.columns()
        if cols is None:
            return None
        return [int(v) for v in cols[0]]

    outcomes = hammer(8, read)
    materialized = [o for o in outcomes if o is not None]
    assert materialized, "columns() never materialized"
    assert all(o == expected_a for o in materialized)


def test_concurrent_mixed_readers_agree():
    """rows_readonly(), columns(), len, and operators racing freely."""
    rel = Relation.from_columns(
        "R", ["a", "b"],
        [np.arange(2000), np.arange(2000) % 7],
    )
    expected_rows = [(int(i), int(i % 7)) for i in range(2000)]

    def read(index):
        if index % 3 == 0:
            return ("rows", list(rel.rows_readonly()))
        if index % 3 == 1:
            cols = rel.columns()
            return ("cols", None if cols is None else len(cols[0]))
        return ("proj", len(rel.project(["a"])))

    outcomes = hammer(9, read)
    for kind, value in outcomes:
        if kind == "rows":
            assert value == expected_rows
        elif kind == "cols":
            assert value in (None, 2000)
        else:
            assert value == 2000


def test_borrow_demote_race_with_readers():
    """rows() borrowing while other threads read never tears state."""
    for _ in range(5):
        rel = Relation.from_columns(
            "R", ["a", "b"], [np.arange(500), np.arange(500) % 3]
        )
        expected = [(int(i), int(i % 3)) for i in range(500)]

        def access(index):
            if index == 0:
                return rel.rows()          # the borrow/demote transition
            return list(rel.rows_readonly())

        outcomes = hammer(6, access)
        assert rel.is_borrowed
        for rows in outcomes:
            assert list(rows) == expected


def test_borrowed_relation_columns_not_cached_stale():
    """After a borrow + in-place append, columns reflect the live list."""
    rel = Relation("R", ["a", "b"], [(1, 2), (3, 4)])
    assert rel.columns() is not None       # prime the column cache
    live = rel.rows()                      # borrow drops/invalidates it
    live.append((5, 6))
    cols = rel.columns()
    if cols is not None:
        assert [int(v) for v in cols[0]] == [1, 3, 5]
    assert rel.rows_readonly() == [(1, 2), (3, 4), (5, 6)]
