"""Tests for CSV I/O."""

import pytest

from repro.data.io import read_csv, write_csv
from repro.data.relation import Relation
from repro.errors import SchemaError


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        r = Relation("R", ["x", "y"], [(1, 2), (3, 4)])
        path = tmp_path / "r.csv"
        write_csv(r, path)
        loaded = read_csv(path)
        assert loaded.name == "r"
        assert loaded.schema.attributes == ("x", "y")
        assert loaded.rows() == [(1, 2), (3, 4)]

    def test_mixed_types(self, tmp_path):
        r = Relation("R", ["k", "v"], [(1, "abc"), (2, 3.5)])
        path = tmp_path / "m.csv"
        write_csv(r, path)
        loaded = read_csv(path)
        assert loaded.rows() == [(1, "abc"), (2, 3.5)]

    def test_headerless(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("1,2\n3,4\n")
        loaded = read_csv(path, header=False)
        assert loaded.schema.attributes == ("c0", "c1")
        assert loaded.rows() == [(1, 2), (3, 4)]

    def test_custom_name(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("x\n1\n")
        assert read_csv(path, name="Orders").name == "Orders"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_write_without_header(self, tmp_path):
        r = Relation("R", ["x"], [(7,)])
        path = tmp_path / "nh.csv"
        write_csv(r, path, header=False)
        assert path.read_text().strip() == "7"

    def test_loaded_relation_joins(self, tmp_path):
        r = Relation("R", ["x", "y"], [(1, 2)])
        s = Relation("S", ["y", "z"], [(2, 3)])
        pr, ps = tmp_path / "r.csv", tmp_path / "s.csv"
        write_csv(r, pr)
        write_csv(s, ps)
        j = read_csv(pr).join(read_csv(ps))
        assert j.rows() == [(1, 2, 3)]
