"""Regression: ``Relation.rows()`` hands out the live list — nobody may mutate it.

``rows()`` deliberately returns the internal tuple store without copying
(the MPC algorithms walk millions of rows; a defensive copy per call
would dominate). The contract is therefore *callers must not mutate*.
This suite enforces it mechanically: every input relation (and sort item
list) is backed by a list subclass that raises on any mutating method,
and all sixteen differential algorithm entry points are driven over
workloads of every instance kind. An algorithm sorting or appending to
its *input* in place — the historical ``rename``-shares-rows bug —
explodes here instead of silently corrupting a shared relation.
"""

import pytest

from repro.data.relation import Relation
from repro.testing.differential import ALGORITHMS, KINDS, generate_instances


class MutationError(AssertionError):
    pass


def _forbid(name):
    def method(self, *args, **kwargs):
        raise MutationError(f"input list mutated via {name}()")

    method.__name__ = name
    return method


class GuardedList(list):
    """A list whose every mutating method raises :class:`MutationError`."""


for _name in (
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "__setitem__", "__delitem__", "__iadd__", "__imul__",
):
    setattr(GuardedList, _name, _forbid(_name))


def _guard_instance(instance):
    """Swap each input's backing list for a guarded one, keep snapshots."""
    snapshots = {}
    for name, rel in instance.relations.items():
        snapshots[name] = list(rel.rows())
        rel._rows = GuardedList(rel.rows())
    if instance.items:
        snapshots["@items"] = list(instance.items)
        instance.items = GuardedList(instance.items)
    return snapshots


def _check_unchanged(instance, snapshots, context):
    for name, rel in instance.relations.items():
        assert rel.rows() == snapshots[name], (
            f"{context}: relation {name} changed in place"
        )
    if "@items" in snapshots:
        assert list(instance.items) == snapshots["@items"], (
            f"{context}: sort items changed in place"
        )


class TestGuardedList:
    def test_guard_raises_on_every_mutator(self):
        guarded = GuardedList([1, 2, 3])
        with pytest.raises(MutationError):
            guarded.append(4)
        with pytest.raises(MutationError):
            guarded.sort()
        with pytest.raises(MutationError):
            guarded[0] = 9
        with pytest.raises(MutationError):
            guarded += [4]
        assert list(guarded) == [1, 2, 3]  # reads untouched

    def test_relation_ops_read_only_on_guarded_rows(self):
        rel = Relation("R", ["x", "y"], [(2, 1), (1, 2)])
        rel._rows = GuardedList(rel.rows())
        rel.project(["x"])
        rel.select(lambda row: row[0] > 1)
        rel.rename({"x": "u"}, name="R2")
        assert rel.rows() == [(2, 1), (1, 2)]


class TestAllAlgorithmsLeaveInputsAlone:
    @pytest.mark.parametrize("kind", KINDS)
    def test_inputs_unchanged(self, kind):
        instances = generate_instances(2, seed=123, kinds=[kind])
        exercised = set()
        for instance in instances:
            snapshots = _guard_instance(instance)
            for case in ALGORITHMS:
                if not case.applies(instance):
                    continue
                case.run(instance, seed=instance.seed)
                exercised.add(case.name)
                _check_unchanged(instance, snapshots,
                                 f"{case.name} on {instance.label}")
        assert exercised, f"no algorithm applies to kind {kind!r}"

    def test_every_algorithm_is_exercised(self):
        # The per-kind runs above must, between them, cover all sixteen
        # entry points — otherwise the footgun audit has a blind spot.
        instances = [
            generate_instances(1, seed=123, kinds=[kind])[0] for kind in KINDS
        ]
        covered = {
            case.name
            for case in ALGORITHMS
            for instance in instances
            if case.applies(instance)
        }
        assert covered == {case.name for case in ALGORITHMS}
