"""Regressions for the dual-representation coherency machinery.

PR 3 cached ``Relation.columns()`` keyed on ``len(rows)`` only, so a
*same-length* in-place rewrite of a list handed out by ``rows()`` (or
adopted by ``wrap()``) kept serving the stale arrays — the kernels then
joined data that no longer existed. The columnar-native layer replaces
that with a monotonic mutation token plus a sticky *borrowed* flag;
these tests pin the exact scenarios the length key missed.
"""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.errors import SchemaError


class TestStaleColumnRegression:
    """Satellite 1: the length-only cache-invalidation bug."""

    def test_same_length_rewrite_via_rows_is_seen(self):
        # The pre-fix failure: len() is unchanged, so a length-keyed
        # cache would keep returning columns built from (1, 2), (3, 4).
        rel = Relation("R", ["x", "y"], [(1, 2), (3, 4)])
        assert [c.tolist() for c in rel.columns()] == [[1, 3], [2, 4]]
        live = rel.rows()
        live[0] = (9, 9)
        assert [c.tolist() for c in rel.columns()] == [[9, 3], [9, 4]]

    def test_same_length_rewrite_via_wrap_is_seen(self):
        rows = [(1, 10), (2, 20), (3, 30)]
        rel = Relation.wrap("R", ["x", "y"], rows)
        assert [c.tolist() for c in rel.columns()] == [[1, 2, 3], [10, 20, 30]]
        rows[1] = (7, 70)  # caller kept its reference; len unchanged
        assert [c.tolist() for c in rel.columns()] == [[1, 7, 3], [10, 70, 30]]

    def test_same_length_rewrite_invalidates_key_column_reuse(self):
        rel = Relation("R", ["x", "y"], [(1, 2), (3, 4)])
        other = Relation("S", ["y", "z"], [(2, 5), (9, 6)])
        assert sorted(rel.join(other).rows_readonly()) == [(1, 2, 5)]
        live = rel.rows()
        live[0] = (1, 9)  # now matches the other S tuple instead
        assert sorted(rel.join(other).rows_readonly()) == [(1, 9, 6)]

    def test_borrowed_relations_never_cache_extraction(self):
        rel = Relation("R", ["x"], [(1,), (2,)])
        rel.rows()  # borrow
        first = rel.columns()
        second = rel.columns()
        assert first is not second  # fresh extraction every call

    def test_unborrowed_extraction_is_cached(self):
        rel = Relation("R", ["x"], [(1,), (2,)])
        assert rel.columns() is rel.columns()

    def test_add_invalidates_cached_columns(self):
        rel = Relation("R", ["x"], [(1,)])
        before = rel.columns()
        rel.add((2,))
        after = rel.columns()
        assert before is not after
        assert after[0].tolist() == [1, 2]


class TestMutationToken:
    def test_token_bumps_on_every_mutation(self):
        rel = Relation("R", ["x"], [(1,)])
        t0 = rel.mutation_token()
        rel.add((2,))
        t1 = rel.mutation_token()
        rel.extend([(3,), (4,)])
        t2 = rel.mutation_token()
        rel.rows()
        t3 = rel.mutation_token()
        assert t0 < t1 < t2 < t3

    def test_readonly_accessors_leave_token_alone(self):
        rel = Relation("R", ["x", "y"], [(1, 2)])
        t0 = rel.mutation_token()
        rel.rows_readonly()
        rel.columns()
        list(rel)
        len(rel)
        assert rel.mutation_token() == t0
        assert not rel.is_borrowed

    def test_borrow_is_sticky(self):
        rel = Relation("R", ["x"], [(1,)])
        rel.rows()
        assert rel.is_borrowed
        rel.add((2,))  # still borrowed: the old alias can still mutate
        assert rel.is_borrowed

    def test_column_primary_demotes_on_rows(self):
        rel = Relation.from_columns("R", ["x"], [np.array([1, 2])])
        assert rel.is_columnar
        live = rel.rows()
        assert not rel.is_columnar and rel.is_borrowed
        live.append((3,))
        assert rel.columns()[0].tolist() == [1, 2, 3]


class TestWrapArityCheck:
    """Satellite 3: wrap() must reject malformed rows at the boundary."""

    def test_wrong_arity_first_row_raises(self):
        with pytest.raises(SchemaError, match="arity"):
            Relation.wrap("R", ["x", "y"], [(1, 2, 3)])

    def test_wrong_arity_later_row_raises_in_debug(self):
        # The full scan is a __debug__ assertion; pytest runs with
        # assertions enabled, so the deep malformed row surfaces too.
        with pytest.raises(SchemaError, match="arity"):
            Relation.wrap("R", ["x", "y"], [(1, 2), (3,)])

    def test_empty_and_valid_lists_pass(self):
        assert len(Relation.wrap("R", ["x", "y"], [])) == 0
        rel = Relation.wrap("R", ["x", "y"], [(1, 2), (3, 4)])
        assert rel.rows_readonly() == [(1, 2), (3, 4)]
