"""Unit tests for repro.data.schema."""

import pytest

from repro.data.schema import Schema
from repro.errors import SchemaError


class TestSchemaConstruction:
    def test_attributes_preserved_in_order(self):
        s = Schema(["x", "y", "z"])
        assert s.attributes == ("x", "y", "z")
        assert s.arity == 3

    def test_accepts_any_iterable(self):
        s = Schema(a for a in ("x", "y"))
        assert s.attributes == ("x", "y")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["x", "x"])

    def test_non_string_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["x", 3])

    def test_empty_string_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema([""])


class TestSchemaLookup:
    def test_index(self):
        s = Schema(["x", "y", "z"])
        assert s.index("x") == 0
        assert s.index("z") == 2

    def test_index_missing_raises(self):
        with pytest.raises(SchemaError):
            Schema(["x"]).index("w")

    def test_indices_follow_argument_order(self):
        s = Schema(["x", "y", "z"])
        assert s.indices(["z", "x"]) == (2, 0)

    def test_contains(self):
        s = Schema(["x", "y"])
        assert "x" in s
        assert "w" not in s

    def test_iteration_and_len(self):
        s = Schema(["x", "y"])
        assert list(s) == ["x", "y"]
        assert len(s) == 2


class TestSchemaOperations:
    def test_project(self):
        s = Schema(["x", "y", "z"]).project(["z", "y"])
        assert s.attributes == ("z", "y")

    def test_project_missing_raises(self):
        with pytest.raises(SchemaError):
            Schema(["x"]).project(["y"])

    def test_rename(self):
        s = Schema(["x", "y"]).rename({"x": "u"})
        assert s.attributes == ("u", "y")

    def test_rename_collision_raises(self):
        with pytest.raises(SchemaError):
            Schema(["x", "y"]).rename({"x": "y"})

    def test_common_preserves_left_order(self):
        a = Schema(["x", "y", "z"])
        b = Schema(["z", "y", "w"])
        assert a.common(b) == ("y", "z")

    def test_equality_and_hash(self):
        assert Schema(["x", "y"]) == Schema(["x", "y"])
        assert Schema(["x", "y"]) != Schema(["y", "x"])
        assert hash(Schema(["x"])) == hash(Schema(["x"]))
