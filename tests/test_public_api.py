"""The public API surface: every export resolves, every module imports."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.bench",
    "repro.data",
    "repro.kernels",
    "repro.mpc",
    "repro.query",
    "repro.joins",
    "repro.multiway",
    "repro.sorting",
    "repro.matmul",
    "repro.theory",
    "repro.planner",
    "repro.testing",
]


class TestImports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_imports(self, package):
        importlib.import_module(package)

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_sorted_and_unique(self, package):
        module = importlib.import_module(package)
        exports = list(module.__all__)
        assert len(exports) == len(set(exports)), f"{package} duplicates"

    def test_every_submodule_importable(self):
        for package in PACKAGES[1:]:
            module = importlib.import_module(package)
            for info in pkgutil.iter_modules(module.__path__):
                importlib.import_module(f"{package}.{info.name}")


class TestDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_has_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip()

    @pytest.mark.parametrize("package", PACKAGES)
    def test_public_callables_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"{package}: {undocumented}"


class TestVersioning:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2
