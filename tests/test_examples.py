"""Smoke tests: the example scripts run end-to-end and report success.

Only the fast examples run in CI cadence; the heavyweight ones are
executed with reduced visibility (still checked for import errors via
compileall-style compilation).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))
FAST = {"quickstart.py", "matmul_pipeline.py", "engine_demo.py"}


class TestExamples:
    def test_examples_exist(self):
        assert len(EXAMPLES) >= 8

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize(
        "path", [p for p in EXAMPLES if p.name in FAST], ids=lambda p: p.name
    )
    def test_fast_examples_run(self, path):
        result = subprocess.run(
            [sys.executable, str(path)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()
        assert "MISMATCH" not in result.stdout
