"""Every benchmark experiment runs end-to-end at a tiny size.

The ``benchmarks/bench_*.py`` modules double as the paper's tables and
figures; nothing else executes their experiment functions under pytest
(the tier-1 suite only collects ``tests/``). This module imports each one
and calls its experiment entry points with the smallest sizes they
support, so a refactor that breaks a benchmark is caught before a
release run. Marked ``slow``: the full sweep takes ~half a minute.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

_BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

# (module, callable, kwargs) — tiny sizes where the experiment accepts
# them, defaults where it is already fast. bench_f1 requires n to be a
# multiple of its fixed degree of 256.
EXPERIMENTS = [
    ("bench_t1_cost_regimes", "run_experiment", {"n": 64}),
    ("bench_f1_load_concentration", "run_experiment", {"n": 512}),
    ("bench_f2_skew_threshold", "run_experiment", {}),
    ("bench_t2_cartesian", "run_experiment", {}),
    ("bench_t3_skew_join", "run_experiment", {}),
    ("bench_f3_triangle", "run_experiment", {"n": 64}),
    ("bench_t4_unequal", "run_experiment", {}),
    ("bench_f4_speedup", "run_experiment", {"n": 64}),
    ("bench_t5_skewhc", "residual_table", {}),
    ("bench_t5_skewhc", "run_measurement", {"n": 64}),
    ("bench_t6_rounds", "analytic_table", {}),
    ("bench_t6_rounds", "run_two_path_measurement", {}),
    ("bench_t7_agm", "run_experiment", {}),
    ("bench_f5_hl_semijoin", "run_experiment", {}),
    ("bench_t8_gym", "run_experiment", {}),
    ("bench_f6_ghd_tradeoff", "star_experiment", {}),
    ("bench_f6_ghd_tradeoff", "path_experiment", {}),
    ("bench_t9_sorting", "psrs_experiment", {"n": 512}),
    ("bench_t9_sorting", "multiround_experiment", {"n": 512}),
    # t10 slices n into fixed block sizes (12, 6, 4): n must divide them all.
    ("bench_t10_matmul", "run_experiment", {"n": 12}),
    ("bench_t11_matmul_lb", "run_experiment", {"n": 8}),
    ("bench_f7_matmul_frontier", "run_experiment", {"n": 8}),
    ("bench_x1_extensions", "rectangular_experiment", {}),
    ("bench_x1_extensions", "sparse_experiment", {}),
    ("bench_x1_extensions", "planner_experiment", {}),
    ("bench_x1_extensions", "groupby_experiment", {}),
    ("bench_x1_extensions", "reduced_experiment", {}),
    ("bench_x2_open_problems", "spider_exponents", {}),
    ("bench_x2_open_problems", "scalability_table", {}),
    ("bench_x2_open_problems", "blowup_experiment", {}),
    ("bench_x3_faults", "recovery_overhead_experiment",
     {"rates": (0.0, 0.2), "n_join": 400, "n_tri": 300}),
    ("bench_x3_faults", "checkpoint_interval_experiment",
     {"n": 400, "depth": 4, "intervals": (1, 4)}),
    ("bench_x4_backend_scaling", "worker_scaling_experiment",
     {"workers": (1, 2), "n_join": 400, "n_tri": 300}),
    ("bench_x4_backend_scaling", "transport_experiment", {"n_join": 400}),
    ("bench_x7_planner", "planner_experiment", {"quick": True}),
    ("bench_ablations", "share_rounding_ablation", {}),
    ("bench_ablations", "threshold_ablation", {}),
    ("bench_ablations", "psrs_sampling_ablation", {}),
    ("bench_ablations", "ghd_flatten_ablation", {}),
]


@pytest.fixture(scope="module", autouse=True)
def _bench_on_path():
    sys.path.insert(0, str(_BENCH_DIR))
    try:
        yield
    finally:
        sys.path.remove(str(_BENCH_DIR))


def test_every_experiment_module_is_covered():
    """Each bench_* module contributes at least one smoke entry."""
    covered = {module for module, _, _ in EXPERIMENTS}
    on_disk = {p.stem for p in _BENCH_DIR.glob("bench_*.py")}
    # bench_kernels is pytest-benchmark-only (no experiment function).
    assert on_disk - covered == {"bench_kernels"}


@pytest.mark.parametrize(
    "module_name, function_name, kwargs",
    EXPERIMENTS,
    ids=[f"{m}.{f}" for m, f, _ in EXPERIMENTS],
)
def test_experiment_smoke(module_name, function_name, kwargs):
    module = importlib.import_module(module_name)
    result = getattr(module, function_name)(**kwargs)
    # Experiments return their table rows (or None after printing);
    # a non-exception return is the contract being smoke-tested.
    assert result is None or result is not None
