"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ClusterError,
    DecompositionError,
    LoadExceededError,
    OptimizationError,
    QueryError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [SchemaError, QueryError, ClusterError, DecompositionError, OptimizationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_load_exceeded_is_cluster_error(self):
        assert issubclass(LoadExceededError, ClusterError)

    def test_load_exceeded_carries_context(self):
        err = LoadExceededError(server=3, load=100, cap=50)
        assert err.server == 3
        assert err.load == 100
        assert err.cap == 50
        assert "server 3" in str(err)
        assert "100" in str(err) and "50" in str(err)

    def test_catch_all_library_errors(self):
        """A caller can guard any repro call with one except clause."""
        from repro.data.schema import Schema

        with pytest.raises(ReproError):
            Schema([])
