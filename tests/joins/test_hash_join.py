"""Tests for the parallel hash join — correctness and slide-23/24 load behaviour."""

import pytest

from repro.data.generators import (
    matching_relation,
    regular_degree_relation,
    single_value_relation,
    uniform_relation,
)
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.joins.hash_join import parallel_hash_join


def reference(r, s):
    return sorted(r.join(s).rows())


class TestCorrectness:
    def test_small_example(self):
        r = Relation("R", ["x", "y"], [("a", "b"), ("a", "c"), ("b", "c")])
        s = Relation("S", ["y", "z"], [("b", "d"), ("b", "e"), ("c", "e")])
        run = parallel_hash_join(r, s, p=3)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_uniform_data(self):
        r = uniform_relation("R", ["x", "y"], 400, 60, seed=1)
        s = uniform_relation("S", ["y", "z"], 400, 60, seed=2)
        run = parallel_hash_join(r, s, p=8)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_multi_attribute_key(self):
        r = Relation("R", ["x", "y", "w"], [(1, 2, 3), (1, 2, 4), (9, 9, 9)])
        s = Relation("S", ["y", "w", "z"], [(2, 3, 7), (2, 4, 8)])
        run = parallel_hash_join(r, s, p=4)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_empty_inputs(self):
        r = Relation("R", ["x", "y"])
        s = Relation("S", ["y", "z"], [(1, 2)])
        run = parallel_hash_join(r, s, p=4)
        assert len(run.output) == 0

    def test_disjoint_schemas_rejected(self):
        r = Relation("R", ["x"], [(1,)])
        s = Relation("S", ["z"], [(2,)])
        with pytest.raises(QueryError):
            parallel_hash_join(r, s, p=2)

    def test_output_schema(self):
        r = Relation("R", ["x", "y"], [(1, 2)])
        s = Relation("S", ["y", "z"], [(2, 3)])
        run = parallel_hash_join(r, s, p=2)
        assert run.output.schema.attributes == ("x", "y", "z")

    def test_p_one(self):
        r = uniform_relation("R", ["x", "y"], 50, 20, seed=3)
        s = uniform_relation("S", ["y", "z"], 50, 20, seed=4)
        run = parallel_hash_join(r, s, p=1)
        assert sorted(run.output.rows()) == reference(r, s)


class TestCosts:
    def test_single_round(self):
        r = uniform_relation("R", ["x", "y"], 100, 30, seed=1)
        s = uniform_relation("S", ["y", "z"], 100, 30, seed=2)
        run = parallel_hash_join(r, s, p=4)
        assert run.rounds == 1

    def test_no_skew_load_near_in_over_p(self):
        # Slide 24: matching data (degree 1) concentrates at IN/p.
        n, p = 4000, 8
        r = matching_relation("R", ["x", "y"], n)
        s = matching_relation("S", ["y", "z"], n)
        run = parallel_hash_join(r, s, p=p)
        expected = 2 * n / p
        assert run.load < 1.5 * expected

    def test_degree_d_load_grows(self):
        # Slide 25: degree-d values raise the tail; with d = IN/p the load
        # is noticeably above IN/p.
        n, p = 4000, 8
        light = parallel_hash_join(
            matching_relation("R", ["x", "y"], n),
            matching_relation("S", ["y", "z"], n),
            p=p,
        )
        heavy = parallel_hash_join(
            regular_degree_relation("R", ["x", "y"], n, "y", degree=n // p, seed=1),
            regular_degree_relation("S", ["y", "z"], n, "y", degree=n // p, seed=2),
            p=p,
        )
        assert heavy.load > light.load

    def test_extreme_skew_load_is_in(self):
        # Slide 27: one join value -> every tuple lands on one server.
        n, p = 500, 8
        r = single_value_relation("R", ["x", "y"], n, "y")
        s = single_value_relation("S", ["y", "z"], n, "y")
        run = parallel_hash_join(r, s, p=p)
        assert run.load == 2 * n

    def test_deterministic_given_seed(self):
        r = uniform_relation("R", ["x", "y"], 200, 40, seed=1)
        s = uniform_relation("S", ["y", "z"], 200, 40, seed=2)
        a = parallel_hash_join(r, s, p=4, seed=9)
        b = parallel_hash_join(r, s, p=4, seed=9)
        assert a.load == b.load
        assert sorted(a.output.rows()) == sorted(b.output.rows())
