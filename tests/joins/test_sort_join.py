"""Tests for the parallel sort join (slide 31)."""

import pytest

from repro.data.generators import (
    single_value_relation,
    skewed_relation,
    uniform_relation,
)
from repro.data.relation import Relation
from repro.joins.sort_join import sort_join


def reference(r, s):
    return sorted(r.join(s).rows())


class TestCorrectness:
    def test_small_example(self):
        r = Relation("R", ["x", "y"], [(1, 2), (1, 3), (2, 3)])
        s = Relation("S", ["y", "z"], [(2, 10), (3, 11), (3, 12)])
        run = sort_join(r, s, p=3)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_uniform_data(self):
        r = uniform_relation("R", ["x", "y"], 400, 60, seed=1)
        s = uniform_relation("S", ["y", "z"], 400, 60, seed=2)
        run = sort_join(r, s, p=8)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_extreme_skew_single_value(self):
        n = 80
        r = single_value_relation("R", ["x", "y"], n, "y")
        s = single_value_relation("S", ["y", "z"], n, "y")
        run = sort_join(r, s, p=8)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_zipf_skew(self):
        r = skewed_relation("R", ["x", "y"], 400, "y", universe=80, s=1.3, seed=3)
        s = skewed_relation("S", ["y", "z"], 400, "y", universe=80, s=1.3, seed=4)
        run = sort_join(r, s, p=8)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_straddling_values_not_duplicated(self):
        # A value with degree ~ N/p straddles a boundary with high
        # probability; the output must still be exact (no double count).
        rows_r = [(i, 5) for i in range(40)] + [(100 + i, i % 20 + 10) for i in range(60)]
        rows_s = [(5, i) for i in range(40)] + [(i % 20 + 10, 200 + i) for i in range(60)]
        r = Relation("R", ["x", "y"], rows_r)
        s = Relation("S", ["y", "z"], rows_s)
        run = sort_join(r, s, p=5)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_empty_inputs(self):
        r = Relation("R", ["x", "y"])
        s = Relation("S", ["y", "z"])
        run = sort_join(r, s, p=4)
        assert len(run.output) == 0

    def test_p_one(self):
        r = uniform_relation("R", ["x", "y"], 60, 20, seed=5)
        s = uniform_relation("S", ["y", "z"], 60, 20, seed=6)
        run = sort_join(r, s, p=1)
        assert sorted(run.output.rows()) == reference(r, s)


class TestCosts:
    def test_load_bounded_under_extreme_skew(self):
        # Same optimal bound as the skew join: far below the naive IN.
        n, p = 400, 16
        r = single_value_relation("R", ["x", "y"], n, "y")
        s = single_value_relation("S", ["y", "z"], n, "y")
        run = sort_join(r, s, p=p)
        assert run.load < 2 * n / 2

    def test_round_count_small(self):
        r = uniform_relation("R", ["x", "y"], 200, 50, seed=7)
        s = uniform_relation("S", ["y", "z"], 200, 50, seed=8)
        run = sort_join(r, s, p=4)
        # PSRS's 3 rounds + boundary report (+ optional heavy products).
        assert run.rounds <= 5
