"""Tests for the shared join plumbing (repro.joins.base)."""

import pytest

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.joins.base import JoinRun, join_schemas, local_join, require_join_key
from repro.mpc.cluster import Cluster
from repro.mpc.stats import RoundStats, RunStats


class TestJoinSchemas:
    def test_shared_and_output(self):
        r = Relation("R", ["x", "y"], [])
        s = Relation("S", ["y", "z"], [])
        shared, schema = join_schemas(r, s)
        assert shared == ("y",)
        assert schema.attributes == ("x", "y", "z")

    def test_multi_attribute(self):
        r = Relation("R", ["a", "b", "c"], [])
        s = Relation("S", ["b", "c", "d"], [])
        shared, schema = join_schemas(r, s)
        assert shared == ("b", "c")
        assert schema.attributes == ("a", "b", "c", "d")

    def test_require_key_raises_on_product(self):
        r = Relation("R", ["x"], [])
        s = Relation("S", ["z"], [])
        with pytest.raises(QueryError):
            require_join_key(r, s)


class TestJoinRun:
    def test_properties(self):
        stats = RunStats(2)
        stats.rounds.append(RoundStats("a", [7, 1]))
        stats.rounds.append(RoundStats("b", [0, 0]))
        run = JoinRun(Relation("OUT", ["x"], [(1,)]), stats)
        assert run.load == 7
        assert run.rounds == 1


class TestLocalJoin:
    def test_joins_fragments_and_consumes_them(self):
        cluster = Cluster(1)
        server = cluster.servers[0]
        server.put("L", [(1, 2), (3, 4)])
        server.put("R", [(2, 9)])
        left_schema = Relation("L", ["x", "y"], [])
        right_schema = Relation("R", ["y", "z"], [])
        local_join(server, "L", "R", left_schema, right_schema, "out")
        assert server.get("out") == [(1, 2, 9)]
        assert server.get("L") == []  # consumed
        assert server.get("R") == []

    def test_appends_to_existing_output(self):
        cluster = Cluster(1)
        server = cluster.servers[0]
        server.put("out", [(0, 0, 0)])
        server.put("L", [(1, 2)])
        server.put("R", [(2, 9)])
        local_join(
            server, "L", "R",
            Relation("L", ["x", "y"], []), Relation("R", ["y", "z"], []), "out",
        )
        assert server.get("out") == [(0, 0, 0), (1, 2, 9)]
