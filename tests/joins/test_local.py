"""Tests for the local join kernels: all three must agree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.joins.local import (
    cartesian_rows,
    hash_join_rows,
    merge_join_rows,
    nested_loop_rows,
)

LEFT = [(1, 2), (1, 3), (2, 3), (4, 9)]
RIGHT = [(2, 10), (3, 11), (3, 12)]
KEY_L, KEY_R, PAYLOAD = (1,), (0,), (1,)


class TestKernelAgreement:
    def test_hash_join(self):
        out = hash_join_rows(LEFT, RIGHT, KEY_L, KEY_R, PAYLOAD)
        assert sorted(out) == [(1, 2, 10), (1, 3, 11), (1, 3, 12), (2, 3, 11), (2, 3, 12)]

    def test_merge_equals_hash(self):
        assert sorted(merge_join_rows(LEFT, RIGHT, KEY_L, KEY_R, PAYLOAD)) == sorted(
            hash_join_rows(LEFT, RIGHT, KEY_L, KEY_R, PAYLOAD)
        )

    def test_nested_loop_equals_hash(self):
        assert sorted(nested_loop_rows(LEFT, RIGHT, KEY_L, KEY_R, PAYLOAD)) == sorted(
            hash_join_rows(LEFT, RIGHT, KEY_L, KEY_R, PAYLOAD)
        )

    rows = st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=25)

    @given(rows, rows)
    def test_property_all_kernels_agree(self, left, right):
        results = [
            sorted(kernel(left, right, KEY_L, KEY_R, PAYLOAD))
            for kernel in (hash_join_rows, merge_join_rows, nested_loop_rows)
        ]
        assert results[0] == results[1] == results[2]


class TestEdgeCases:
    def test_empty_left(self):
        assert hash_join_rows([], RIGHT, KEY_L, KEY_R, PAYLOAD) == []

    def test_empty_right(self):
        assert merge_join_rows(LEFT, [], KEY_L, KEY_R, PAYLOAD) == []

    def test_duplicates_multiply(self):
        left = [(1, 5), (2, 5)]
        right = [(5, 7), (5, 8)]
        out = hash_join_rows(left, right, (1,), (0,), (1,))
        assert len(out) == 4

    def test_empty_payload_keeps_multiplicity(self):
        left = [(1, 5)]
        right = [(5,), (5,)]
        out = hash_join_rows(left, right, (1,), (0,), ())
        assert out == [(1, 5), (1, 5)]


class TestCartesianRows:
    def test_product(self):
        out = cartesian_rows([(1,), (2,)], [(8,), (9,)])
        assert sorted(out) == [(1, 8), (1, 9), (2, 8), (2, 9)]

    def test_empty(self):
        assert cartesian_rows([], [(1,)]) == []
        assert cartesian_rows([(1,)], []) == []
