"""Tests for the broadcast join and the grid Cartesian product."""

import math

import pytest

from repro.data.generators import uniform_relation
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.joins.broadcast_join import broadcast_join
from repro.joins.cartesian import (
    cartesian_product,
    optimal_rectangle,
    predicted_cartesian_load,
)


class TestBroadcastJoin:
    def test_correctness_small_left(self):
        r = Relation("R", ["x", "y"], [(1, 2), (3, 4)])
        s = uniform_relation("S", ["y", "z"], 300, 10, seed=1)
        run = broadcast_join(r, s, p=4)
        assert sorted(run.output.rows()) == sorted(r.join(s).rows())
        assert run.output.schema.attributes == ("x", "y", "z")

    def test_correctness_small_right(self):
        r = uniform_relation("R", ["x", "y"], 300, 10, seed=2)
        s = Relation("S", ["y", "z"], [(1, 2), (3, 4)])
        run = broadcast_join(r, s, p=4)
        assert sorted(run.output.rows()) == sorted(r.join(s).rows())
        assert run.output.schema.attributes == ("x", "y", "z")

    def test_load_is_small_relation_size(self):
        r = Relation("R", ["x", "y"], [(i, i) for i in range(10)])
        s = uniform_relation("S", ["y", "z"], 1000, 50, seed=3)
        run = broadcast_join(r, s, p=8)
        assert run.load == len(r)
        assert run.rounds == 1

    def test_beats_hash_join_for_tiny_relation(self):
        from repro.joins.hash_join import parallel_hash_join

        r = Relation("R", ["x", "y"], [(i, i % 5) for i in range(8)])
        s = uniform_relation("S", ["y", "z"], 2000, 5, seed=4)
        bc = broadcast_join(r, s, p=16)
        hj = parallel_hash_join(r, s, p=16)
        assert bc.load < hj.load


class TestOptimalRectangle:
    def test_balanced(self):
        p1, p2 = optimal_rectangle(1000, 1000, 16)
        assert (p1, p2) == (4, 4)

    def test_lopsided_degenerates_to_broadcast(self):
        # Slide 28: |R| << |S| -> p1 = 1 (broadcast R, partition S).
        p1, p2 = optimal_rectangle(10, 10**6, 16)
        assert p1 == 1 and p2 == 16

    def test_product_at_most_p(self):
        for p in (5, 7, 12, 60):
            p1, p2 = optimal_rectangle(300, 700, p)
            assert p1 * p2 <= p

    def test_invalid_p(self):
        with pytest.raises(QueryError):
            optimal_rectangle(1, 1, 0)


class TestCartesianProduct:
    def test_correctness(self):
        r = Relation("R", ["x"], [(i,) for i in range(30)])
        s = Relation("S", ["z"], [(i,) for i in range(20)])
        run = cartesian_product(r, s, p=6)
        assert len(run.output) == 600
        assert sorted(run.output.rows()) == sorted(
            (a, b) for a in range(30) for b in range(20)
        )

    def test_shared_attributes_rejected(self):
        r = Relation("R", ["x"], [(1,)])
        s = Relation("S", ["x"], [(1,)])
        with pytest.raises(QueryError):
            cartesian_product(r, s, p=2)

    def test_load_tracks_optimum(self):
        # Slide 28: L = 2·sqrt(|R||S|/p) up to hashing noise.
        n = 400
        r = Relation("R", ["x"], [(i,) for i in range(n)])
        s = Relation("S", ["z"], [(i,) for i in range(n)])
        run = cartesian_product(r, s, p=16)
        assert run.load <= 2.0 * predicted_cartesian_load(n, n, 16)
        assert run.load >= 0.5 * predicted_cartesian_load(n, n, 16)

    def test_single_round(self):
        r = Relation("R", ["x"], [(1,), (2,)])
        s = Relation("S", ["z"], [(3,)])
        run = cartesian_product(r, s, p=4)
        assert run.rounds == 1

    def test_predicted_load_formula(self):
        assert predicted_cartesian_load(100, 400, 4) == pytest.approx(
            2 * math.sqrt(100 * 400 / 4)
        )

    def test_empty_side(self):
        r = Relation("R", ["x"])
        s = Relation("S", ["z"], [(1,)])
        run = cartesian_product(r, s, p=4)
        assert len(run.output) == 0
