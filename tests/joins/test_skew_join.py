"""Tests for the skew-aware join (slides 29–30)."""

import math

import pytest

from repro.data.generators import (
    single_value_relation,
    skewed_relation,
    uniform_relation,
)
from repro.data.relation import Relation
from repro.joins.heavy import allocate_servers
from repro.joins.skew_join import find_heavy_keys, skew_join


def reference(r, s):
    return sorted(r.join(s).rows())


class TestFindHeavyKeys:
    def test_detects_heavy_in_either_side(self):
        r = Relation("R", ["x", "y"], [(i, 7) for i in range(10)] + [(0, 1)])
        s = Relation("S", ["y", "z"], [(2, i) for i in range(10)] + [(1, 0)])
        heavy = find_heavy_keys(r, s, ("y",), threshold=5)
        assert heavy == [(2,), (7,)]

    def test_high_threshold_no_heavy(self):
        r = Relation("R", ["x", "y"], [(1, 2)])
        s = Relation("S", ["y", "z"], [(2, 3)])
        assert find_heavy_keys(r, s, ("y",), threshold=5) == []


class TestAllocateServers:
    def test_proportional(self):
        alloc = allocate_servers([3.0, 1.0], 8)
        assert alloc == [6, 2]

    def test_minimum_one(self):
        alloc = allocate_servers([1000.0, 0.001], 8)
        assert alloc[1] >= 1

    def test_empty(self):
        assert allocate_servers([], 8) == []

    def test_total_near_p(self):
        alloc = allocate_servers([5, 5, 5, 5], 9)
        assert sum(alloc) <= 9 + 4  # ≥1 floor may force a small overshoot


class TestCorrectness:
    def test_uniform_data(self):
        r = uniform_relation("R", ["x", "y"], 300, 40, seed=1)
        s = uniform_relation("S", ["y", "z"], 300, 40, seed=2)
        run = skew_join(r, s, p=8)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_extreme_skew(self):
        r = single_value_relation("R", ["x", "y"], 60, "y")
        s = single_value_relation("S", ["y", "z"], 60, "y")
        run = skew_join(r, s, p=8)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_zipf_skew(self):
        r = skewed_relation("R", ["x", "y"], 500, "y", universe=100, s=1.4, seed=1)
        s = skewed_relation("S", ["y", "z"], 500, "y", universe=100, s=1.4, seed=2)
        run = skew_join(r, s, p=8)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_mixed_heavy_and_light(self):
        rows_r = [(i, 0) for i in range(50)] + [(i, i) for i in range(1, 30)]
        rows_s = [(0, i) for i in range(50)] + [(i, i) for i in range(1, 30)]
        r = Relation("R", ["x", "y"], rows_r)
        s = Relation("S", ["y", "z"], rows_s)
        run = skew_join(r, s, p=6)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_degenerate_unary_s(self):
        # S adds no attributes: multiplicity semantics must be preserved.
        r = Relation("R", ["x", "y"], [(i, 0) for i in range(20)])
        s = Relation("S", ["y"], [(0,), (0,), (0,)])
        run = skew_join(r, s, p=4, threshold=2)
        assert sorted(run.output.rows()) == reference(r, s)

    def test_empty_input(self):
        r = Relation("R", ["x", "y"])
        s = Relation("S", ["y", "z"], [(1, 1)])
        run = skew_join(r, s, p=4)
        assert len(run.output) == 0


class TestCosts:
    def test_beats_hash_join_under_extreme_skew(self):
        # Slide 27 vs 30: hash join pays IN; skew join pays ~sqrt(OUT/p)+IN/p.
        from repro.joins.hash_join import parallel_hash_join

        n, p = 400, 16
        r = single_value_relation("R", ["x", "y"], n, "y")
        s = single_value_relation("S", ["y", "z"], n, "y")
        hj = parallel_hash_join(r, s, p=p)
        sj = skew_join(r, s, p=p)
        assert hj.load == 2 * n
        assert sj.load < hj.load / 2

    def test_load_tracks_sqrt_out_over_p(self):
        n, p = 400, 16
        r = single_value_relation("R", ["x", "y"], n, "y")
        s = single_value_relation("S", ["y", "z"], n, "y")
        run = skew_join(r, s, p=p)
        out = n * n
        bound = math.sqrt(out / p) + 2 * n / p
        assert run.load <= 4 * bound

    def test_single_round_in_model(self):
        # Light join and heavy products run on disjoint pools: 1 round.
        n, p = 200, 8
        r = single_value_relation("R", ["x", "y"], n, "y")
        s = single_value_relation("S", ["y", "z"], n, "y")
        run = skew_join(r, s, p=p)
        assert run.rounds <= 2

    def test_no_skew_matches_hash_join_load_scale(self):
        from repro.joins.hash_join import parallel_hash_join

        r = uniform_relation("R", ["x", "y"], 800, 400, seed=5)
        s = uniform_relation("S", ["y", "z"], 800, 400, seed=6)
        hj = parallel_hash_join(r, s, p=8)
        sj = skew_join(r, s, p=8)
        assert sj.load <= 2 * hj.load
