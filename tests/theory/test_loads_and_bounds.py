"""Tests for cost profiles, speedup curves, and lower bounds."""

import pytest

from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    path_query,
    triangle_query,
    two_path_query,
)
from repro.theory.loads import (
    cost_profile,
    hypercube_speedup,
    required_processors_for_speedup,
)
from repro.theory.lower_bounds import (
    join_load_lower_bound,
    matmul_communication_lower_bound,
    matmul_one_round_communication_lower_bound,
    matmul_products_per_server,
    matmul_rounds_lower_bound,
    sort_communication_lower_bound,
    sort_rounds_lower_bound,
)

APPROX = pytest.approx


class TestCostProfiles:
    def test_triangle_row(self):
        # Slide 54 row 1: τ* = 3/2, ψ* = 2, ρ* = 3/2.
        profile = cost_profile(triangle_query())
        assert profile.tau_star == APPROX(1.5)
        assert profile.psi_star == APPROX(2.0)
        assert profile.rho_star == APPROX(1.5)

    def test_two_way_join_row(self):
        # Slide 54 row 2: τ* = 1, ψ* = 2, ρ* = 2.
        q = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        profile = cost_profile(q)
        assert profile.tau_star == APPROX(1.0)
        assert profile.psi_star == APPROX(2.0)
        assert profile.rho_star == APPROX(2.0)

    def test_two_path_row(self):
        # Slide 54 row 3: τ* = 2, ψ* = 2, ρ* = 1.
        profile = cost_profile(two_path_query())
        assert profile.tau_star == APPROX(2.0)
        assert profile.psi_star == APPROX(2.0)
        assert profile.rho_star == APPROX(1.0)

    def test_load_formulas(self):
        profile = cost_profile(triangle_query())
        assert profile.one_round_load_no_skew(1000, 8) == APPROX(1000 / 4)
        assert profile.one_round_load_skew(1000, 16) == APPROX(250)
        assert profile.multi_round_load_no_skew(1000, 8) == APPROX(125)


class TestSpeedup:
    def test_curve_capped_by_tau(self):
        curve = hypercube_speedup(exponent_sum=1.0, tau=1.5, p_values=[2, 8, 64])
        for p, s in curve:
            assert s == APPROX(min(p, p ** (2 / 3)))

    def test_slide62_scalability_warning(self):
        # τ* = 10 (the 20-atom path): 2× speedup needs 1024× processors.
        from repro.query.fractional import tau_star

        tau = tau_star(path_query(20))
        assert tau == APPROX(10.0)
        assert required_processors_for_speedup(2.0, tau) == APPROX(1024.0)

    def test_invalid_speedup(self):
        with pytest.raises(ValueError):
            required_processors_for_speedup(0, 2)


class TestJoinLowerBound:
    def test_matches_slide56_shape(self):
        # With OUT = IN^ρ* and r = O(1): L = Ω(IN / p^{1/ρ*}).
        in_size, rho, p = 10**6, 1.5, 64
        out = in_size**rho
        bound = join_load_lower_bound(out, rho, p, rounds=1)
        assert bound == APPROX(in_size / p ** (1 / rho))

    def test_more_rounds_weaker_bound(self):
        b1 = join_load_lower_bound(10**9, 1.5, 64, rounds=1)
        b3 = join_load_lower_bound(10**9, 1.5, 64, rounds=3)
        assert b3 < b1

    def test_invalid(self):
        with pytest.raises(ValueError):
            join_load_lower_bound(0, 1.5, 4, 1)


class TestSortBounds:
    def test_rounds_bound(self):
        assert sort_rounds_lower_bound(10**6, 10**3) == APPROX(2.0)

    def test_communication_bound(self):
        assert sort_communication_lower_bound(10**6, 10**3) == APPROX(2 * 10**6)

    def test_independent_of_p(self):
        # Slide 105: more processors do not reduce rounds.
        assert sort_rounds_lower_bound(10**6, 100) == sort_rounds_lower_bound(
            10**6, 100
        )

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            sort_rounds_lower_bound(10, 1)


class TestMatmulBounds:
    def test_products_per_server_agm(self):
        assert matmul_products_per_server(100) == APPROX(1000.0)

    def test_communication_bound(self):
        assert matmul_communication_lower_bound(100, 400) == APPROX(100**3 / 20)

    def test_one_round_bound_stronger_at_small_load(self):
        n = 100
        small_load = 50  # < n²: one-round bound n⁴/L > multi-round n³/√L
        assert matmul_one_round_communication_lower_bound(
            n, small_load
        ) > matmul_communication_lower_bound(n, small_load)

    def test_rounds_bound_regimes(self):
        # Compute-bound regime: few servers.
        assert matmul_rounds_lower_bound(100, p=10, load=200) == APPROX(
            100**3 / (10 * 200**1.5)
        )
        # Aggregation-bound regime: many servers.
        many = matmul_rounds_lower_bound(100, p=10**9, load=4)
        assert many == APPROX(math_log_ratio(100, 4))

    def test_invalid(self):
        with pytest.raises(ValueError):
            matmul_communication_lower_bound(10, 0)
        with pytest.raises(ValueError):
            matmul_rounds_lower_bound(10, 2, 1)


def math_log_ratio(n, load):
    import math

    return math.log(n) / math.log(load)
