"""Remaining coverage for QueryCostProfile and load formulas."""

import pytest

from repro.query.cq import triangle_query, two_path_query
from repro.theory.loads import QueryCostProfile, cost_profile, hypercube_speedup


class TestProfileMethods:
    def test_multi_round_skew_uses_rho(self):
        # 2-path: ρ* = 1 -> multi-round skew load IN/p.
        profile = cost_profile(two_path_query())
        assert profile.multi_round_load_skew(1600, 16) == pytest.approx(100.0)

    def test_triangle_multi_round_skew(self):
        # ρ* = 3/2 -> IN/p^(2/3).
        profile = cost_profile(triangle_query())
        assert profile.multi_round_load_skew(1000, 8) == pytest.approx(250.0)

    def test_ordering_of_regimes(self):
        """Slide 54: multi-round ≤ no-skew 1-round ≤ skew 1-round loads."""
        profile = cost_profile(triangle_query())
        in_size, p = 10**6, 64
        multi = profile.multi_round_load_no_skew(in_size, p)
        one_no_skew = profile.one_round_load_no_skew(in_size, p)
        one_skew = profile.one_round_load_skew(in_size, p)
        assert multi <= one_no_skew <= one_skew

    def test_profile_is_frozen(self):
        profile = QueryCostProfile("q", 1.5, 2.0, 1.5)
        with pytest.raises(AttributeError):
            profile.tau_star = 2.0  # type: ignore[misc]

    def test_query_string_recorded(self):
        profile = cost_profile(triangle_query())
        assert "R(x, y)" in profile.query


class TestSpeedupCurve:
    def test_returns_pairs_for_all_p(self):
        curve = hypercube_speedup(1.0, 1.5, [1, 2, 4])
        assert [p for p, _ in curve] == [1, 2, 4]

    def test_monotone(self):
        curve = hypercube_speedup(0.9, 1.5, [1, 4, 16, 64])
        speedups = [s for _, s in curve]
        assert speedups == sorted(speedups)
