"""Tests for the Chernoff load analysis (slides 24–26)."""

import math

import pytest

from repro.theory.chernoff import (
    degree_threshold,
    empirical_overload_probability,
    overload_probability_bound,
    threshold_curve,
)


class TestOverloadBound:
    def test_formula(self):
        # p·exp(−δ²·IN/(3pd)) by hand.
        val = overload_probability_bound(10**6, 100, 10, 0.3)
        expected = 100 * math.exp(-0.09 * 10**6 / (3 * 100 * 10))
        assert val == pytest.approx(expected)

    def test_capped_at_one(self):
        assert overload_probability_bound(10, 1000, 1000, 0.01) == 1.0

    def test_monotone_in_degree(self):
        low = overload_probability_bound(10**6, 100, 1, 0.3)
        high = overload_probability_bound(10**6, 100, 1000, 0.3)
        assert low <= high

    def test_monotone_in_p(self):
        few = overload_probability_bound(10**6, 10, 10, 0.3)
        many = overload_probability_bound(10**6, 1000, 10, 0.3)
        assert few <= many

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            overload_probability_bound(0, 10, 1, 0.3)
        with pytest.raises(ValueError):
            overload_probability_bound(10, 10, 1, 0)


class TestDegreeThreshold:
    def test_slide26_p100_value(self):
        # Slide 26 annotates p = 100 → d ≈ 4,000,000 at IN = 10¹¹.
        d = degree_threshold(10**11, 100, delta=0.3, confidence=0.95)
        assert 3.0e6 < d < 5.0e6

    def test_decreasing_in_p(self):
        curve = threshold_curve(10**11, [50, 100, 200, 400, 800])
        values = [d for _, d in curve]
        assert values == sorted(values, reverse=True)

    def test_threshold_consistent_with_bound(self):
        # At the threshold degree, the bound equals the failure probability.
        in_size, p = 10**9, 64
        d = degree_threshold(in_size, p, delta=0.3, confidence=0.95)
        assert overload_probability_bound(in_size, p, d, 0.3) == pytest.approx(0.05)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            degree_threshold(10**6, 10, confidence=1.0)


class TestEmpiricalValidation:
    def test_bound_upper_bounds_reality_low_degree(self):
        n_keys, degree, p, delta = 2000, 1, 10, 0.3
        measured = empirical_overload_probability(
            n_keys, degree, p, delta, trials=60, seed=1
        )
        bound = overload_probability_bound(n_keys * degree, p, degree, delta)
        assert measured <= bound + 0.05

    def test_high_degree_overloads_often(self):
        # Degree near IN/p: a single value can tip a server over (1+δ)IN/p.
        measured = empirical_overload_probability(
            n_keys=20, degree=100, p=10, delta=0.3, trials=60, seed=2
        )
        assert measured > 0.5

    def test_deterministic_given_seed(self):
        a = empirical_overload_probability(100, 2, 8, 0.3, trials=20, seed=3)
        b = empirical_overload_probability(100, 2, 8, 0.3, trials=20, seed=3)
        assert a == b
