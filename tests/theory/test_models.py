"""Tests for the model-translation formulas (slide 19)."""

import pytest

from repro.mpc.stats import RoundStats, RunStats
from repro.theory.models import (
    brent_bound,
    circuit_of_mpc,
    circuit_of_run,
    pram_time_of_run,
)


def run_stats(p, loads_per_round):
    stats = RunStats(p)
    for i, loads in enumerate(loads_per_round):
        stats.rounds.append(RoundStats(f"r{i}", loads))
    return stats


class TestCircuitOfMpc:
    def test_dictionary(self):
        shape = circuit_of_mpc(p=16, rounds=3, load=100)
        assert shape.size == 48
        assert shape.depth == 3
        assert shape.fan_in == 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            circuit_of_mpc(0, 1, 1)

    def test_of_run(self):
        stats = run_stats(4, [[5, 1, 0, 0], [2, 2, 2, 2]])
        shape = circuit_of_run(stats)
        assert shape.depth == 2
        assert shape.fan_in == 5
        assert shape.size == 8


class TestBrent:
    def test_formula(self):
        assert brent_bound(1000, 10, 100) == pytest.approx(20.0)

    def test_more_processors_saturates_at_depth(self):
        assert brent_bound(1000, 10, 10**9) == pytest.approx(10.0, rel=1e-3)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            brent_bound(10, 1, 0)

    def test_pram_time_of_run_decreases_with_p(self):
        stats = run_stats(4, [[100, 100, 100, 100]])
        t4 = pram_time_of_run(stats, p=4)
        t400 = pram_time_of_run(stats, p=400)
        assert t400 < t4
