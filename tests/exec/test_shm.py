"""Shared-memory columnar transport: round-trips and segment lifecycle."""

import numpy as np
import pytest

from repro.exec import shm
from repro.exec.config import use_shm_rows


def _payload():
    return (
        [np.arange(10, dtype=np.int64), "rows"],
        {"cols": (np.linspace(0.0, 1.0, 5), np.array([[1, 2], [3, 4]]))},
        42,
    )


def _assert_matches(decoded):
    part, mapping, scalar = decoded
    np.testing.assert_array_equal(part[0], np.arange(10, dtype=np.int64))
    assert part[1] == "rows"
    np.testing.assert_allclose(mapping["cols"][0], np.linspace(0.0, 1.0, 5))
    np.testing.assert_array_equal(mapping["cols"][1], [[1, 2], [3, 4]])
    assert scalar == 42


def test_owned_round_trip():
    encoded = shm.encode_payload(_payload(), "shm")
    assert encoded.segment_name is not None
    assert encoded.nbytes == 10 * 8 + 5 * 8 + 4 * 8
    _assert_matches(shm.decode_owned(encoded))


def test_owned_copies_survive_unlink():
    encoded = shm.encode_payload(_payload(), "shm")
    decoded = shm.decode_owned(encoded)  # segment unlinked here
    _assert_matches(decoded)  # arrays are private copies, still valid


def test_read_round_trip_zero_copy():
    encoded = shm.encode_payload(_payload(), "shm")
    decoded, segment = shm.decode_for_read(encoded)
    assert segment is not None
    _assert_matches(decoded)
    del decoded  # drop the views so close() can proceed
    shm.finish_read(segment)


def test_pickle_transport_passthrough():
    payload = _payload()
    encoded = shm.encode_payload(payload, "pickle")
    assert encoded.segment_name is None
    assert encoded.nbytes == 0
    assert shm.decode_owned(encoded) is payload
    decoded, segment = shm.decode_for_read(encoded)
    assert decoded is payload and segment is None
    shm.finish_read(None)  # no-op by contract


def test_no_arrays_passthrough():
    payload = ([("a", 1), ("b", 2)], {"k": "v"})
    encoded = shm.encode_payload(payload, "shm")
    assert encoded.segment_name is None  # nothing worth a segment


def test_empty_arrays_passthrough():
    # Zero total bytes: zero-length segments are invalid, must passthrough.
    payload = (np.array([], dtype=np.int64), np.array([], dtype=np.float64))
    encoded = shm.encode_payload(payload, "shm")
    assert encoded.segment_name is None
    a, b = shm.decode_owned(encoded)
    assert a.size == 0 and b.size == 0


def test_mixed_empty_and_full_arrays():
    payload = (np.array([], dtype=np.int64), np.arange(4))
    encoded = shm.encode_payload(payload, "shm")
    assert encoded.segment_name is not None
    a, b = shm.decode_owned(encoded)
    assert a.size == 0
    np.testing.assert_array_equal(b, np.arange(4))


def test_non_contiguous_arrays():
    base = np.arange(20).reshape(4, 5)
    payload = (base[:, ::2], base.T)  # strided + transposed views
    encoded = shm.encode_payload(payload, "shm")
    a, b = shm.decode_owned(encoded)
    np.testing.assert_array_equal(a, base[:, ::2])
    np.testing.assert_array_equal(b, base.T)


def test_release_payload_is_idempotent():
    encoded = shm.encode_payload((np.arange(8),), "shm")
    shm.release_payload(encoded)
    shm.release_payload(encoded)  # second release: segment already gone
    with pytest.raises(FileNotFoundError):
        shm.attach_segment(encoded.segment_name)


def test_values_are_exact_not_approximate():
    # The byte-identity argument rests on arrays round-tripping exactly.
    values = np.array([0.1, 1e-300, 3.141592653589793, -2.5e17])
    encoded = shm.encode_payload((values,), "shm")
    (out,) = shm.decode_owned(encoded)
    assert out.tolist() == values.tolist()


# ------------------------------------------------- integer row-block packing


def _rows(n=40, arity=3):
    return [tuple(i * arity + j for j in range(arity)) for i in range(n)]


def test_row_block_round_trip_owned():
    rows = _rows()
    encoded = shm.encode_payload({"deliver": rows}, "shm")
    assert encoded.segment_name is not None  # rows rode shared memory
    assert encoded.nbytes == 40 * 3 * 8
    out = shm.decode_owned(encoded)
    assert out == {"deliver": rows}
    assert all(type(v) is int for row in out["deliver"] for v in row)


def test_row_block_round_trip_zero_copy():
    rows = _rows(64, 2)
    encoded = shm.encode_payload([rows, rows[:5]], "shm")
    decoded, segment = shm.decode_for_read(encoded)
    assert decoded[0] == rows
    assert decoded[1] == rows[:5]  # small list: untouched, rode pickle
    shm.finish_read(segment)


def test_row_block_gate_off_means_pickle():
    rows = _rows()
    with use_shm_rows(False):
        encoded = shm.encode_payload((rows,), "shm")
    assert encoded.segment_name is None  # nothing packed
    (out,) = shm.decode_owned(encoded)
    assert out is rows


def test_row_block_explicit_flag_beats_ambient():
    rows = _rows()
    assert shm.encode_payload((rows,), "shm", pack_rows=False).segment_name is None
    assert shm.encode_payload((rows,), "shm", pack_rows=True).segment_name is not None


@pytest.mark.parametrize("rows", [
    _rows(31),                                    # below the size threshold
    [tuple()] * 40,                               # arity 0
    [(1.5, 2)] + _rows(39, 2),                    # float in the probe row
    [(True, 2)] + _rows(39, 2),                   # bool must stay bool
    [("a", 2)] + _rows(39, 2),                    # non-numeric
    _rows(39, 2) + [(0.5, 1)],                    # float past the probe row
    _rows(39, 2) + [(1, 2, 3)],                   # ragged arity
    _rows(39, 2) + [(2**70, 1)],                  # overflows int64
    [[1, 2]] * 40,                                # lists, not tuples
])
def test_row_block_fallbacks(rows):
    encoded = shm.encode_payload((rows,), "shm")
    assert encoded.segment_name is None
    (out,) = shm.decode_owned(encoded)
    assert out is rows


def test_row_block_negative_and_extreme_ints_exact():
    rows = [(-(2**63), 2**63 - 1, 0)] * 40
    encoded = shm.encode_payload((rows,), "shm")
    assert encoded.segment_name is not None
    (out,) = shm.decode_owned(encoded)
    assert out == rows
