"""chunk_bounds: the contiguous server→worker ownership map."""

import pytest

from repro.exec import chunk_bounds


@pytest.mark.parametrize("count,parts", [
    (0, 1), (1, 1), (1, 4), (7, 3), (8, 4), (16, 5), (100, 7), (3, 8),
])
def test_partition_properties(count, parts):
    bounds = chunk_bounds(count, parts)
    # Covers range(count) contiguously, in order, with no empty chunks.
    cursor = 0
    for start, stop in bounds:
        assert start == cursor
        assert stop > start
        cursor = stop
    assert cursor == count
    assert len(bounds) == min(count, parts)


def test_near_even_split():
    sizes = [stop - start for start, stop in chunk_bounds(10, 3)]
    assert sizes == [4, 3, 3]  # first count%parts chunks get the extra


def test_exact_split():
    assert chunk_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_single_part_is_identity():
    assert chunk_bounds(5, 1) == [(0, 5)]


def test_invalid_parts():
    with pytest.raises(ValueError):
        chunk_bounds(4, 0)


def test_owning_worker_matches_bounds():
    from repro.exec.base import ProcessBackend
    from repro.mpc.cluster import Cluster

    cluster = Cluster(10, backend=ProcessBackend(3, "pickle"))
    owners = [cluster.owning_worker(sid) for sid in range(10)]
    assert owners == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]


def test_owning_worker_inline_is_zero():
    from repro.mpc.cluster import Cluster

    cluster = Cluster(6, backend="inline")
    assert {cluster.owning_worker(sid) for sid in range(6)} == {0}
