"""Inline vs process backend: byte-identical observable behavior.

The backends share every task function and all coordinator state, so
outputs, per-round loads, round counts, audit conservation, and fault
replay must be *identical*, not merely equivalent. This suite pins the
contract on real algorithms with small inputs (the full sweep is
``python -m repro selftest --backend both``); tier-1 keeps it fast with
a 2-worker pool that is reused across tests.
"""

import pytest

from repro.data.generators import skewed_relation, uniform_relation
from repro.exec.config import use_backend
from repro.joins.hash_join import parallel_hash_join
from repro.matmul.sql import sql_matmul
from repro.mpc.faults import CrashFault, FaultPlan, StragglerFault, faulty
from repro.multiway.hypercube import hypercube_join
from repro.query.parser import parse_query
from repro.sorting.multiround import multiround_sort
from repro.sorting.psrs import psrs_sort

WORKERS = 2


def both_backends(run):
    with use_backend("inline"):
        inline = run()
    with use_backend("process", workers=WORKERS):
        process = run()
    return inline, process


def assert_same_stats(a, b):
    assert a.max_load == b.max_load
    assert a.num_rounds == b.num_rounds
    assert [r.received for r in a.rounds] == [r.received for r in b.rounds]
    assert (a.audit is None) == (b.audit is None)
    if a.audit is not None:
        assert a.audit.ok == b.audit.ok


def test_hash_join_identical():
    R = uniform_relation("R", ("a", "b"), 400, universe=60, seed=1)
    S = uniform_relation("S", ("b", "c"), 400, universe=60, seed=2)
    runs = both_backends(lambda: parallel_hash_join(R, S, 6))
    inline, process = runs
    assert inline.output == process.output  # order included
    assert_same_stats(inline.stats, process.stats)
    exec_stats = process.stats.exec
    assert exec_stats.backend == "process"
    assert exec_stats.fallbacks == 0
    assert exec_stats.items > 0


def test_triangle_hypercube_identical():
    from repro.data.relation import Relation

    E = skewed_relation("E", ("x", "y"), 300, "x", 40, 0.8, seed=3)
    rows = E.rows()
    relations = {
        "R": Relation("R", ("x", "y"), list(rows)),
        "S": Relation("S", ("y", "z"), list(rows)),
        "T": Relation("T", ("x", "z"), list(rows)),
    }
    query = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(x,z)")
    inline, process = both_backends(lambda: hypercube_join(query, relations, 8))
    assert inline.output == process.output
    assert_same_stats(inline.stats, process.stats)


def test_psrs_sort_identical():
    items = [(i * 2654435761) % 997 for i in range(900)]
    (out_i, st_i), (out_p, st_p) = both_backends(lambda: psrs_sort(items, 5, seed=2))
    assert out_i == out_p == sorted(items)
    assert_same_stats(st_i, st_p)
    assert st_p.exec.fallbacks == 0


def test_multiround_sort_identical():
    items = [(i * 48271) % 4001 for i in range(800)]
    (out_i, st_i), (out_p, st_p) = both_backends(
        lambda: multiround_sort(items, 6, 48, seed=4)
    )
    assert out_i == out_p == sorted(items)
    assert_same_stats(st_i, st_p)


def test_matmul_identical():
    import numpy as np

    rng = np.random.default_rng(11)
    A = rng.integers(0, 5, size=(12, 9)).astype(float)
    B = rng.integers(0, 5, size=(9, 10)).astype(float)
    (c_i, st_i), (c_p, st_p) = both_backends(lambda: sql_matmul(A, B, 4))
    assert np.array_equal(c_i, c_p)
    assert np.array_equal(c_i, A @ B)
    assert_same_stats(st_i, st_p)


def test_faults_identical_across_backends():
    """Fault injection and recovery replay are coordinator-side: a crash
    plan produces the same recovery story under both backends, and the
    per-worker attribution reflects pool ownership."""
    R = uniform_relation("R", ("a", "b"), 240, universe=40, seed=5)
    S = uniform_relation("S", ("b", "c"), 240, universe=40, seed=6)
    # parallel_hash_join opens exactly one round (ordinal 0).
    plan = FaultPlan(
        crashes=(CrashFault(0, 2), CrashFault(0, 5)),
        stragglers=(StragglerFault(0, 3, 4),),
    )

    def run():
        with faulty(plan):
            return parallel_hash_join(R, S, 6)

    inline, process = both_backends(run)
    assert inline.output == process.output
    assert_same_stats(inline.stats, process.stats)
    fi, fp = inline.stats.faults, process.stats.faults
    assert fi is not None and fp is not None
    assert fi.clean and fp.clean
    assert fi.injected == fp.injected > 0
    assert fi.rounds_replayed == fp.rounds_replayed
    assert fi.recovery_load == fp.recovery_load
    # Totals agree; only the attribution dimension differs by design.
    assert sum(fi.by_worker.values()) == sum(fp.by_worker.values())
    assert set(fi.by_worker) == {0}
    assert set(fp.by_worker) <= set(range(WORKERS))
    # Servers 2 and 3 sit in worker 0's range, server 5 in worker 1's.
    assert set(fp.by_worker) == {0, 1}


def test_pickle_transport_identical_to_shm():
    R = uniform_relation("R", ("a", "b"), 300, universe=50, seed=7)
    S = uniform_relation("S", ("b", "c"), 300, universe=50, seed=8)
    with use_backend("process", workers=WORKERS, transport="shm"):
        via_shm = parallel_hash_join(R, S, 6)
    with use_backend("process", workers=WORKERS, transport="pickle"):
        via_pickle = parallel_hash_join(R, S, 6)
    assert via_shm.output == via_pickle.output
    assert via_shm.stats.max_load == via_pickle.stats.max_load
