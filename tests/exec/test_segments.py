"""Shared-memory segment lifecycle under abnormal shutdown.

Every outbound segment is registered on the pool's ledger until the
worker's reply proves it was consumed; result segments are registered
until decoded. These tests kill workers mid-dispatch, tear pools down
on the exception path, and restart after a crash — asserting in each
case that no ``psm_*`` segment outlives the pool and that coordinator
state (fault replay included) is unaffected by the respawn.
"""

import os
import signal

import numpy as np
import pytest

from repro.exec import shm, tasks
from repro.exec.config import use_backend
from repro.exec.pool import WorkerError, WorkerPool, get_pool


def _kill_self_chunk(payloads, common):
    os.kill(os.getpid(), signal.SIGKILL)


def _sum_chunk(payloads, common):
    return [int(np.asarray(block).sum()) for block in payloads]


tasks.register("segments.kill", _kill_self_chunk)
tasks.register("segments.sum", _sum_chunk)


def _psm_segments() -> set[str]:
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux shm mount
        return set()


def _array_chunks():
    return [
        (0, [np.arange(2048, dtype=np.int64)]),
        (1, [np.arange(2048, dtype=np.int64)]),
    ]


def test_worker_crash_mid_dispatch_leaks_no_segments():
    before = _psm_segments()
    pool = WorkerPool(2, "shm")
    with pytest.raises(WorkerError, match="died while jobs were pending"):
        pool.run("segments.kill", _array_chunks(), None, False)
    assert pool._closed  # the pool is unusable after losing workers
    assert _psm_segments() <= before  # nothing new left behind
    with pytest.raises(RuntimeError, match="shut down"):
        pool.run("segments.kill", _array_chunks(), None, False)


def test_emergency_teardown_unlinks_registered_segments():
    # The ledger path in isolation: a segment still registered as
    # in-flight (the worker never consumed it) must be unlinked by an
    # emergency teardown, whatever interrupted the collect loop.
    pool = WorkerPool(1, "shm")
    encoded = shm.encode_payload(
        ([np.arange(4096, dtype=np.int64)], None), "shm", pack_rows=True
    )
    assert encoded.segment_name is not None
    assert encoded.segment_name in _psm_segments()
    pool._inflight[99] = [encoded.segment_name]
    pool._emergency_teardown()
    assert encoded.segment_name not in _psm_segments()


def test_shutdown_after_real_work_leaves_no_segments():
    before = _psm_segments()
    pool = WorkerPool(2, "shm")
    results, _ = pool.run("segments.sum", _array_chunks(), None, False)
    assert results == [[int(np.arange(2048).sum())]] * 2
    pool.shutdown()
    assert _psm_segments() <= before


def test_pool_recreated_after_crash_and_faults_replay_once():
    from repro.data.generators import uniform_relation
    from repro.joins.hash_join import parallel_hash_join
    from repro.mpc.faults import CrashFault, FaultPlan, faulty

    R = uniform_relation("R", ("a", "b"), 200, universe=30, seed=11)
    S = uniform_relation("S", ("b", "c"), 200, universe=30, seed=12)
    plan = FaultPlan(crashes=(CrashFault(0, 1), CrashFault(0, 3)))

    with use_backend("inline"):
        with faulty(plan):
            reference = parallel_hash_join(R, S, 6)

    before = _psm_segments()
    with use_backend("process", workers=2, transport="shm"):
        # Crash the shared pool mid-dispatch...
        crashed = get_pool(2, "shm")
        with pytest.raises(WorkerError):
            crashed.run("segments.kill", _array_chunks(), None, False)
        assert crashed._closed
        # ...then run a faulty query: get_pool must hand out a fresh
        # pool, and the coordinator-side fault replay must behave as if
        # nothing happened — injected once, replayed once, same output.
        with faulty(plan):
            run = parallel_hash_join(R, S, 6)
        assert get_pool(2, "shm") is not crashed
    assert run.output == reference.output
    assert run.stats.max_load == reference.stats.max_load
    fi, fp = reference.stats.faults, run.stats.faults
    assert fp is not None and fi is not None
    assert fp.injected == fi.injected > 0
    assert fp.rounds_replayed == fi.rounds_replayed
    assert fp.recovery_load == fi.recovery_load
    assert fp.clean
    assert _psm_segments() <= before
