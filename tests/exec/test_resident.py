"""Resident dispatch protocol: caches, epochs, batching, accounting.

Workers keep content-addressed payload blocks between dispatches and the
coordinator mirrors each worker's cache, so a repeated block travels as
a 16-byte token instead of bytes. These tests pin the cache mechanics
(tokens, staging, epoch invalidation, copy-on-hand-out), the pool-level
protocol (hits on repeat, snapshot forcing, explicit invalidation,
mutation safety), the batched round dispatch, and the per-query
ExecStats accounting primitives.
"""

import numpy as np
import pytest

from repro.exec import shm, tasks
from repro.exec.base import ProcessBackend
from repro.exec.config import use_backend, use_protocol
from repro.exec.pool import WorkerPool
from repro.mpc.cluster import Cluster


def _total_chunk(payloads, common):
    return [int(np.asarray(block).sum()) for block in payloads]


def _mutate_chunk(payloads, common):
    # Mutates its inputs in place: a resident cache handing out the
    # cached object itself (instead of a copy) would corrupt the cache
    # and change the answer on the next hit.
    out = []
    for block in payloads:
        block += 1
        out.append(int(block.sum()))
    return out


def _scale_chunk(payloads, common):
    return [x * common for x in payloads]


def _call_chunk(payloads, common):
    return [fn(common) for fn in payloads]


tasks.register("resident.total", _total_chunk)
tasks.register("resident.mutate", _mutate_chunk)
tasks.register("resident.scale", _scale_chunk)
tasks.register("resident.call", _call_chunk)


@pytest.fixture(scope="module")
def pool():
    pool = WorkerPool(2, "shm")
    yield pool
    pool.shutdown()


def _chunks():
    return [
        (0, [np.arange(1000, dtype=np.int64)]),
        (1, [np.arange(1000, 2000, dtype=np.int64)]),
    ]


# ------------------------------------------------------------- primitives


def test_block_token_is_content_addressed():
    a = np.arange(256, dtype=np.int64)
    b = np.arange(256, dtype=np.int64)
    assert shm._block_token(a) == shm._block_token(b)
    b[0] = 7
    assert shm._block_token(a) != shm._block_token(b)
    # dtype and shape are part of the identity, not just the bytes.
    assert shm._block_token(a) != shm._block_token(a.astype(np.int32))
    assert shm._block_token(a) != shm._block_token(a.reshape(2, 128))


def test_mirror_cache_stage_commit_abort():
    mirror = shm.MirrorCache(cap_bytes=1 << 20)
    epoch = mirror.begin_message()
    mirror.stage("a", b"token-1", 2048)
    assert mirror.is_resident("a", b"token-1")  # visible within the message
    mirror.abort()
    assert not mirror.is_resident("a", b"token-1")  # abort discards staging
    assert mirror.begin_message() == epoch  # nothing committed, no bump
    mirror.stage("a", b"token-1", 2048)
    mirror.commit()
    assert mirror.is_resident("a", b"token-1")
    assert mirror.bytes == 2048


def test_mirror_cache_epoch_bumps_on_invalidate_and_overflow():
    mirror = shm.MirrorCache(cap_bytes=4096)
    first = mirror.begin_message()
    mirror.stage("a", b"t1", 5000)
    mirror.commit()
    assert mirror.is_resident("a", b"t1")
    # Over the cap: the next message starts a new epoch with nothing
    # resident (wholesale reset, not piecemeal eviction).
    second = mirror.begin_message()
    assert second == first + 1
    assert not mirror.is_resident("a", b"t1")
    mirror.invalidate()
    assert mirror.begin_message() == second + 1


def test_block_cache_hands_out_copies_and_clears_on_epoch():
    cache = shm.BlockCache()
    cache.sync_epoch(1)
    original = np.arange(64, dtype=np.int64)
    cache.store("a", b"tok", original)
    handed = cache.array(b"tok")
    handed[0] = 999
    assert cache.array(b"tok")[0] == 0  # the cached block is untouched
    cache.store("r", b"rows", [(1, 2), (3, 4)])
    rows = cache.rows(b"rows")
    rows.append((5, 6))
    assert cache.rows(b"rows") == [(1, 2), (3, 4)]
    cache.sync_epoch(2)  # epoch change drops everything
    with pytest.raises(KeyError):
        cache.array(b"tok")


def test_encode_decode_resident_roundtrip():
    mirror = shm.MirrorCache(cap_bytes=1 << 20)
    cache = shm.BlockCache()
    payload = ([np.arange(512, dtype=np.int64)], "common")

    epoch = mirror.begin_message()
    first = shm.encode_payload(payload, "shm", pack_rows=True, mirror=mirror)
    mirror.commit()
    assert first.resident == 0
    cache.sync_epoch(epoch)
    decoded, segment = shm.decode_for_read(first, cache)
    # Views into the segment are only valid until finish_read.
    assert np.array_equal(decoded[0][0], payload[0][0])
    assert decoded[1] == "common"
    shm.finish_read(segment)

    # Same bytes again: the block travels as a token, not a segment.
    epoch = mirror.begin_message()
    second = shm.encode_payload(payload, "shm", pack_rows=True, mirror=mirror)
    mirror.commit()
    assert second.resident == 1
    assert second.resident_bytes == payload[0][0].nbytes
    cache.sync_epoch(epoch)
    decoded, segment = shm.decode_for_read(second, cache)
    assert np.array_equal(decoded[0][0], payload[0][0])
    shm.finish_read(segment)


def test_small_blocks_are_never_cached():
    mirror = shm.MirrorCache(cap_bytes=1 << 20)
    tiny = ([np.arange(8, dtype=np.int64)], None)  # 64 bytes < the floor
    for _ in range(2):
        mirror.begin_message()
        encoded = shm.encode_payload(tiny, "shm", pack_rows=True, mirror=mirror)
        mirror.commit()
        assert encoded.resident == 0
        shm.release_payload(encoded)


# ----------------------------------------------------------- pool protocol


def test_pool_resident_hits_on_repeat(pool):
    first_results, first = pool.run("resident.total", _chunks(), None, False)
    again_results, again = pool.run("resident.total", _chunks(), None, False)
    assert first_results == again_results
    assert first.resident_hits == 0
    assert first.snapshot_dispatches == 2  # both messages shipped bytes
    assert again.resident_hits == 2  # one cached array per worker
    assert again.snapshot_dispatches == 0
    assert again.resident_bytes_saved == 2 * 1000 * 8


def test_snapshot_protocol_reships_everything(pool):
    with use_protocol("snapshot"):
        _, first = pool.run("resident.total", _chunks(), None, False)
        _, again = pool.run("resident.total", _chunks(), None, False)
    assert first.resident_hits == again.resident_hits == 0
    assert first.snapshot_dispatches == again.snapshot_dispatches == 2


def test_invalidate_resident_forces_full_reship(pool):
    warm_results, _ = pool.run("resident.total", _chunks(), None, False)
    pool.invalidate_resident()
    cold_results, cold = pool.run("resident.total", _chunks(), None, False)
    assert cold_results == warm_results
    assert cold.resident_hits == 0
    assert cold.snapshot_dispatches == 2
    # The cache works again after the bump.
    _, rewarmed = pool.run("resident.total", _chunks(), None, False)
    assert rewarmed.resident_hits == 2


def test_mutating_task_is_safe_on_cache_hits(pool):
    pool.invalidate_resident()
    first_results, first = pool.run("resident.mutate", _chunks(), None, False)
    again_results, again = pool.run("resident.mutate", _chunks(), None, False)
    # The second run hit the cache, yet saw pristine inputs: the worker
    # hands out copies, so in-place mutation cannot poison the cache.
    assert again.resident_hits == 2
    assert first_results == again_results


def test_pickle_transport_never_uses_residency():
    pool = WorkerPool(1, "pickle")
    try:
        chunks = [(0, [np.arange(1000, dtype=np.int64)])]
        _, first = pool.run("resident.total", chunks, None, False)
        _, again = pool.run("resident.total", chunks, None, False)
        assert first.resident_hits == again.resident_hits == 0
    finally:
        pool.shutdown()


# --------------------------------------------------------- batched rounds


def test_cluster_map_servers_batch_matches_sequential():
    calls = [
        ("resident.scale", [1, 2, 3, 4], 2),
        ("resident.scale", [5, 6, 7, 8], 3),
        ("resident.scale", [], 9),  # empty call keeps its slot
    ]
    with use_backend("inline"):
        inline = Cluster(4, seed=0).map_servers_batch(calls)
    with use_backend("process", workers=2):
        cluster = Cluster(4, seed=0)
        before = cluster.stats.exec.snapshot()
        batched = cluster.map_servers_batch(calls)
        delta = cluster.stats.exec.delta(before)
    assert batched == inline == [[2, 4, 6, 8], [15, 18, 21, 24], []]
    assert delta.dispatches == 2  # two live calls...
    assert delta.queue_messages == 2  # ...but one message per worker
    assert delta.items == 8


def test_batch_falls_back_inline_on_unpicklable():
    backend = ProcessBackend(2, "pickle")
    stats = backend.new_stats()
    out = backend.map_payload_batch(
        [
            ("resident.scale", [1, 2], 10),
            ("resident.call", [lambda c: c + 1], 4),  # unpicklable payload
        ],
        stats=stats,
    )
    assert out == [[10, 20], [5]]
    assert stats.fallbacks == 2  # the whole batch degraded, counted per call


# ----------------------------------------------------- per-query accounting


def test_per_query_accounting_two_queries_one_pool():
    backend = ProcessBackend(2, "shm")
    stats = backend.new_stats()  # one long-lived stats object, like a service
    payload = [np.arange(1000, dtype=np.int64) + k for k in range(4)]
    backend.map_payloads("resident.total", payload, None, stats=stats)
    first_query = stats.snapshot()
    backend.map_payloads("resident.total", payload, None, stats=stats)
    second_query = stats.delta(first_query)
    # Each query's report covers exactly its own dispatches: the second
    # delta shows one dispatch with resident hits (same blocks again),
    # while the snapshot of the first shows the cold shipment.
    assert first_query.dispatches == 1
    assert second_query.dispatches == 1
    assert second_query.items == 4
    assert first_query.resident_hits == 0
    assert second_query.resident_hits == 4
    assert stats.dispatches == 2  # the running total is untouched
    assert stats.protocol == "resident"


def test_exec_stats_protocol_label():
    with use_protocol("snapshot"):
        assert ProcessBackend(1, "shm").new_stats().protocol == "snapshot"
    assert ProcessBackend(1, "shm").new_stats().protocol == "resident"
