"""Backend selection: env vars, forced overrides, and scoping."""

import pytest

from repro.exec import config


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    for var in ("REPRO_BACKEND", "REPRO_WORKERS", "REPRO_TRANSPORT"):
        monkeypatch.delenv(var, raising=False)
    config.set_backend(None)
    yield
    config.set_backend(None)


def test_defaults():
    assert config.backend_name() == "inline"
    assert config.worker_count() >= 1
    assert config.transport_name() == "shm"


def test_env_selection(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "process")
    monkeypatch.setenv("REPRO_WORKERS", "3")
    monkeypatch.setenv("REPRO_TRANSPORT", "pickle")
    assert config.backend_name() == "process"
    assert config.worker_count() == 3
    assert config.transport_name() == "pickle"


def test_env_is_case_and_space_tolerant(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "  Process ")
    assert config.backend_name() == "process"


def test_invalid_names_raise(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "threads")
    with pytest.raises(ValueError, match="unknown backend"):
        config.backend_name()
    monkeypatch.setenv("REPRO_BACKEND", "inline")
    monkeypatch.setenv("REPRO_TRANSPORT", "mmap")
    with pytest.raises(ValueError, match="unknown transport"):
        config.transport_name()
    monkeypatch.setenv("REPRO_TRANSPORT", "shm")
    monkeypatch.setenv("REPRO_WORKERS", "0")
    with pytest.raises(ValueError, match="at least 1"):
        config.worker_count()


def test_forced_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "inline")
    config.set_backend("process", workers=2, transport="pickle")
    assert config.backend_name() == "process"
    assert config.worker_count() == 2
    assert config.transport_name() == "pickle"
    config.set_backend(None)
    assert config.backend_name() == "inline"


def test_use_backend_scopes_and_restores():
    with config.use_backend("process", workers=2):
        assert config.backend_name() == "process"
        assert config.worker_count() == 2
        with config.use_backend("inline"):
            assert config.backend_name() == "inline"
        assert config.backend_name() == "process"
    assert config.backend_name() == "inline"


def test_use_backend_none_is_noop():
    config.set_backend("process", workers=2)
    with config.use_backend(None, workers=7):
        # None keeps the ambient setting entirely — workers included.
        assert config.backend_name() == "process"
        assert config.worker_count() == 2
    assert config.backend_name() == "process"


def test_use_backend_restores_on_error():
    with pytest.raises(RuntimeError):
        with config.use_backend("process"):
            raise RuntimeError("boom")
    assert config.backend_name() == "inline"
