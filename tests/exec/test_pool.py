"""Worker pool and process backend: dispatch, errors, fallbacks.

The custom test tasks are registered at module import time, *before*
any pool in this file forks, so fork-started workers inherit them in
their copy of the registry (the same mechanism that makes algorithm
tasks resolvable: both sides import the same modules).
"""

import pytest

from repro.exec import tasks
from repro.exec.base import InlineBackend, ProcessBackend, get_backend
from repro.exec.pool import UnpicklablePayloadError, WorkerError, WorkerPool
from repro.mpc.stats import ExecStats


def _double_chunk(payloads, common):
    return [x * common for x in payloads]


def _boom_chunk(payloads, common):
    raise ValueError("task exploded on purpose")


def _short_chunk(payloads, common):
    return payloads[:-1] if payloads else []


def _callable_chunk(payloads, common):
    return [fn(common) for fn in payloads]


tasks.register("test.double", _double_chunk)
tasks.register("test.boom", _boom_chunk)
tasks.register("test.short", _short_chunk)
tasks.register("test.callable", _callable_chunk)


@pytest.fixture(scope="module")
def pool():
    pool = WorkerPool(2, "pickle")
    yield pool
    pool.shutdown()


def test_run_merges_in_chunk_order(pool):
    chunks = [(0, [1, 2, 3]), (1, [4, 5])]
    results, dispatch = pool.run("test.double", chunks, 10, False)
    assert results == [[10, 20, 30], [40, 50]]
    assert dispatch.shm_bytes_out == 0 and dispatch.shm_bytes_in == 0
    assert dispatch.pickle_bytes_out > 0 and dispatch.pickle_bytes_in > 0
    assert dispatch.worker_seconds >= 0.0
    assert dispatch.queue_messages == 2  # one message per participating worker


def test_run_batch_collapses_round_trips(pool):
    calls = [
        ("test.double", [(0, [1, 2]), (1, [3])], 10),
        ("test.double", [(0, [4]), (1, [5, 6])], 100),
    ]
    per_call, dispatch = pool.run_batch(calls, False)
    assert per_call == [
        [[10, 20], [30]],
        [[400], [500, 600]],
    ]
    # Two calls x two workers collapsed into one message per worker.
    assert dispatch.queue_messages == 2


def test_run_batch_reports_failure_of_any_subjob(pool):
    calls = [
        ("test.double", [(0, [1])], 2),
        ("test.boom", [(1, [1])], None),
    ]
    with pytest.raises(WorkerError, match="task exploded on purpose"):
        pool.run_batch(calls, False)
    # Pool survives, same as a single-call task failure.
    results, _ = pool.run("test.double", [(0, [7])], 2, False)
    assert results == [[14]]


def test_worker_error_carries_remote_traceback(pool):
    with pytest.raises(WorkerError, match="task exploded on purpose"):
        pool.run("test.boom", [(0, [1]), (1, [2])], None, False)
    # The pool survives a task failure and keeps serving.
    results, *_ = pool.run("test.double", [(0, [7])], 2, False)
    assert results == [[14]]


def test_unknown_task_is_a_worker_error(pool):
    with pytest.raises(WorkerError, match="unknown exec task"):
        pool.run("test.no-such-task", [(0, [1])], None, False)


def test_unpicklable_payload_raises_synchronously(pool):
    with pytest.raises(UnpicklablePayloadError):
        pool.run("test.double", [(0, [lambda: None])], 1, False)
    with pytest.raises(UnpicklablePayloadError):
        pool.run("test.double", [(0, [1])], lambda: None, False)
    # Still alive afterwards: nothing was ever enqueued.
    results, *_ = pool.run("test.double", [(0, [3])], 3, False)
    assert results == [[9]]


def test_shutdown_is_idempotent():
    pool = WorkerPool(1, "pickle")
    pool.shutdown()
    pool.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        pool.run("test.double", [(0, [1])], 1, False)


def test_process_backend_falls_back_inline_on_unpicklable():
    backend = ProcessBackend(2, "pickle")
    stats = backend.new_stats()
    # Lambda payloads cannot cross the process boundary; the backend
    # reruns the whole map inline with the same task function, so the
    # call still succeeds and the degradation is visible in the stats.
    out = backend.map_payloads(
        "test.callable", [lambda c: c + 1, lambda c: c * 10], 4, stats=stats
    )
    assert out == [5, 40]
    assert stats.fallbacks == 1
    assert stats.backend == "process"


def test_process_backend_counts_traffic():
    backend = ProcessBackend(2, "pickle")
    stats = backend.new_stats()
    out = backend.map_payloads("test.double", [1, 2, 3], 5, stats=stats)
    assert out == [5, 10, 15]
    assert stats.dispatches == 1
    assert stats.chunks == 2
    assert stats.items == 3


def test_process_backend_rejects_non_elementwise_tasks():
    backend = ProcessBackend(1, "pickle")
    with pytest.raises(RuntimeError, match="same-length elementwise"):
        backend.map_payloads("test.short", [1, 2, 3], None)


def test_inline_backend_matches_process():
    inline = InlineBackend()
    process = ProcessBackend(2, "pickle")
    payloads = list(range(17))
    assert inline.map_payloads("test.double", payloads, 3) == \
        process.map_payloads("test.double", payloads, 3)


def test_empty_map_short_circuits():
    backend = ProcessBackend(2, "pickle")
    assert backend.map_payloads("test.double", [], 1) == []


def test_get_backend_resolution():
    assert get_backend("inline").name == "inline"
    backend = InlineBackend()
    assert get_backend(backend) is backend
    from repro.exec.config import use_backend

    with use_backend("process", workers=2, transport="pickle"):
        resolved = get_backend(None)
        assert resolved.name == "process"
        assert resolved.workers == 2
        # Same spec → same cached instance (pools are keyed off it).
        assert get_backend(None) is resolved


def test_exec_stats_merge():
    parts = [
        ExecStats(backend="process", workers=2, transport="shm",
                  dispatches=3, chunks=6, items=30, shm_bytes_out=100,
                  shm_bytes_in=50, pickle_bytes_out=6, pickle_bytes_in=3,
                  worker_seconds=0.5, fallbacks=1),
        None,
        ExecStats(backend="process", workers=2, transport="shm",
                  dispatches=1, chunks=2, items=10, shm_bytes_out=20,
                  shm_bytes_in=10, pickle_bytes_out=3, pickle_bytes_in=2,
                  worker_seconds=0.25),
    ]
    merged = ExecStats.merged(parts)
    assert merged.backend == "process" and merged.workers == 2
    assert merged.dispatches == 4
    assert merged.chunks == 8
    assert merged.items == 40
    assert merged.shm_bytes_out == 120
    assert merged.shm_bytes_in == 60
    assert merged.pickle_bytes_out == 9
    assert merged.pickle_bytes_in == 5
    assert merged.worker_seconds == pytest.approx(0.75)
    assert merged.fallbacks == 1
    assert ExecStats.merged([None, None]) is None


def test_bytes_per_message_none_when_no_messages():
    # A mean over zero messages is undefined; the former 0.0 read as
    # "messages were free" in traces and x9 reports.
    stats = ExecStats(backend="process", workers=2)
    assert stats.queue_messages == 0
    assert stats.bytes_per_message is None


def test_bytes_per_message_mean_of_outbound_bytes():
    stats = ExecStats(backend="process", workers=2, queue_messages=4,
                      shm_bytes_out=1000, pickle_bytes_out=200)
    assert stats.bytes_per_message == pytest.approx(300.0)


def test_summary_and_trace_report_na_not_zero():
    from repro.mpc.stats import RoundStats, RunStats
    from repro.mpc.trace import trace

    run = RunStats(2)
    run.rounds.append(RoundStats("r", [1, 1]))
    run.exec = ExecStats(backend="process", workers=2)
    assert "bytes/msg=n/a" in run.summary()
    assert "bytes/msg=n/a" in trace(run)
    run.exec.queue_messages = 2
    run.exec.pickle_bytes_out = 512
    assert "bytes/msg=256" in run.summary()
    assert "bytes/msg=256" in trace(run)
