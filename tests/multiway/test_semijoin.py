"""Tests for semijoin primitives and the HL+semijoin plans (slides 57–59)."""

import pytest

from repro.data.generators import single_value_relation, uniform_relation
from repro.data.graphs import count_triangles, power_law_edges, random_edges, triangle_relations
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.multiway.base import shuffle_multi_semijoin, shuffle_semijoin
from repro.multiway.semijoin import triangle_hl_semijoin, two_path_semijoin_plan
from repro.query.cq import triangle_query, two_path_query


class TestShuffleSemijoin:
    def test_basic(self):
        r = Relation("R", ["x", "y"], [(1, 2), (3, 4), (5, 6)])
        s = Relation("S", ["y", "z"], [(2, 0), (6, 0)])
        reduced, stats = shuffle_semijoin(r, s, p=4)
        assert sorted(reduced.rows()) == [(1, 2), (5, 6)]
        assert stats.num_rounds == 1

    def test_reducer_sends_distinct_keys_only(self):
        r = Relation("R", ["x", "y"], [(1, 2)])
        s = Relation("S", ["y", "z"], [(2, i) for i in range(100)])
        _, stats = shuffle_semijoin(r, s, p=2)
        # 1 target tuple + 1 distinct reducer key.
        assert stats.total_communication == 2

    def test_multi_semijoin_intersects(self):
        r = Relation("R", ["x", "y"], [(1, 2), (3, 4), (5, 6)])
        s1 = Relation("S1", ["y", "a"], [(2, 0), (4, 0)])
        s2 = Relation("S2", ["y", "b"], [(4, 0), (6, 0)])
        reduced, stats = shuffle_multi_semijoin(r, [s1, s2], p=4)
        assert reduced.rows() == [(3, 4)]
        assert stats.num_rounds == 1

    def test_mismatched_keys_rejected(self):
        r = Relation("R", ["x", "y"], [(1, 2)])
        s1 = Relation("S1", ["y", "a"], [(2, 0)])
        s2 = Relation("S2", ["x", "b"], [(1, 0)])
        with pytest.raises(QueryError):
            shuffle_multi_semijoin(r, [s1, s2], p=2)

    def test_no_shared_attrs_rejected(self):
        r = Relation("R", ["x"], [(1,)])
        s = Relation("S", ["z"], [(2,)])
        with pytest.raises(QueryError):
            shuffle_semijoin(r, s, p=2)

    def test_empty_reducer_list_rejected(self):
        r = Relation("R", ["x"], [(1,)])
        with pytest.raises(QueryError):
            shuffle_multi_semijoin(r, [], p=2)


class TestTwoPathPlan:
    def test_correctness(self):
        q = two_path_query()
        r = Relation("R", ["x"], [(i,) for i in range(0, 40, 2)])
        s = uniform_relation("S", ["x", "y"], 300, 40, seed=1)
        t = Relation("T", ["y"], [(i,) for i in range(0, 40, 3)])
        run = two_path_semijoin_plan(r, s, t, p=8)
        expected = q.evaluate({"R": r, "S": s, "T": t}).project(["x", "y"])
        assert sorted(run.output.rows()) == sorted(expected.rows())

    def test_bag_multiplicities(self):
        r = Relation("R", ["x"], [(1,), (1,)])
        s = Relation("S", ["x", "y"], [(1, 5)])
        t = Relation("T", ["y"], [(5,), (5,), (5,)])
        run = two_path_semijoin_plan(r, s, t, p=2)
        assert len(run.output) == 6

    def test_two_rounds(self):
        r = Relation("R", ["x"], [(1,)])
        s = Relation("S", ["x", "y"], [(1, 2)])
        t = Relation("T", ["y"], [(2,)])
        run = two_path_semijoin_plan(r, s, t, p=4)
        assert run.rounds == 2

    def test_skewed_load_stays_in_over_p(self):
        # Slide 58: semijoins never blow up, even when the one-round
        # bound is IN/p^(1/2).
        n, p = 800, 16
        r = Relation("R", ["x"], [(0,)] * 1)  # single key
        s = single_value_relation("S", ["x", "y"], n, "x", value=0)
        t = Relation("T", ["y"], [(s.rows()[i][1],) for i in range(0, n, 2)])
        run = two_path_semijoin_plan(r, s, t, p=p)
        in_size = len(r) + len(s) + len(t)
        assert run.load <= 3.0 * in_size / p + 5


class TestTriangleHLSemijoin:
    def test_correctness_random(self):
        edges = random_edges(250, 30, seed=2)
        r, s, t = triangle_relations(edges)
        run = triangle_hl_semijoin(r, s, t, p=8)
        assert len(run.output) == count_triangles(edges)
        expected = triangle_query().evaluate({"R": r, "S": s, "T": t})
        assert sorted(run.output.rows()) == sorted(expected.rows())

    def test_correctness_skewed(self):
        edges = power_law_edges(400, 100, s=1.5, seed=3)
        r, s, t = triangle_relations(edges)
        run = triangle_hl_semijoin(r, s, t, p=8)
        assert len(run.output) == count_triangles(edges)

    def test_detects_heavy_hub(self):
        # A hub vertex of huge z-degree must be classified heavy.
        hub_edges = [(i, 0) for i in range(1, 80)]  # all point at vertex 0
        cycle = [(0, 1), (1, 2), (2, 0)]
        e = Relation("E", ["u", "v"], sorted(set(hub_edges + cycle)))
        r, s, t = triangle_relations(e)
        run = triangle_hl_semijoin(r, s, t, p=8)
        assert 0 in run.details["heavy_z"]
        assert len(run.output) == count_triangles(e)

    def test_two_rounds_worst_case(self):
        edges = power_law_edges(300, 60, s=1.6, seed=4)
        r, s, t = triangle_relations(edges)
        run = triangle_hl_semijoin(r, s, t, p=8)
        assert run.rounds <= 2

    def test_beats_plain_hypercube_under_z_skew(self):
        # Slide 59's scenario: skew confined to z. Plain HyperCube hashes
        # the hub value to one z-coordinate and overloads its sub-plane;
        # the HL plan gives the hub its own semijoin residual.
        from repro.data.generators import uniform_relation
        from repro.multiway.hypercube import triangle_hypercube

        n, p = 420, 27
        r = uniform_relation("R", ["x", "y"], n, 40, seed=1)
        # z = 0 is a heavy hub in S and T; other z values are light.
        s_rows = [(i % 40, 0) for i in range(n - 60)] + [
            (i % 40, 1 + i % 25) for i in range(60)
        ]
        t_rows = [(0, i % 40) for i in range(n - 60)] + [
            (1 + i % 25, i % 40) for i in range(60)
        ]
        s = Relation("S", ["y", "z"], s_rows)
        t = Relation("T", ["z", "x"], t_rows)
        hc = triangle_hypercube(r, s, t, p=p)
        hl = triangle_hl_semijoin(r, s, t, p=p)
        assert sorted(hl.output.rows()) == sorted(hc.output.rows())
        assert hl.load < hc.load
