"""Tests for the HyperCube algorithm (slides 34–44)."""

import pytest

from repro.data.generators import matching_relation, uniform_relation
from repro.data.graphs import (
    count_triangles,
    planted_triangles,
    random_edges,
    triangle_relations,
)
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.multiway.hypercube import hypercube_join, triangle_hypercube
from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    path_query,
    star_query,
    triangle_query,
)


class TestTriangleCorrectness:
    def test_planted_triangles(self):
        edges, expected = planted_triangles(6, 80, 160, seed=0)
        r, s, t = triangle_relations(edges)
        run = triangle_hypercube(r, s, t, p=8)
        assert len(run.output) == expected

    def test_matches_sequential_evaluation(self):
        edges = random_edges(250, 30, seed=1)
        r, s, t = triangle_relations(edges)
        run = triangle_hypercube(r, s, t, p=27)
        assert len(run.output) == count_triangles(edges)
        expected = triangle_query().evaluate({"R": r, "S": s, "T": t})
        assert sorted(run.output.rows()) == sorted(expected.rows())

    def test_no_duplicates_across_servers(self):
        # Every output tuple is produced at exactly one grid server.
        edges = random_edges(150, 20, seed=2)
        r, s, t = triangle_relations(edges)
        run = triangle_hypercube(r, s, t, p=8)
        assert len(run.output) == len(set(run.output.rows()))
        assert len(run.output) == count_triangles(edges)

    def test_single_round(self):
        edges = random_edges(100, 25, seed=3)
        r, s, t = triangle_relations(edges)
        run = triangle_hypercube(r, s, t, p=8)
        assert run.rounds == 1

    def test_p_one(self):
        edges = random_edges(60, 15, seed=4)
        r, s, t = triangle_relations(edges)
        run = triangle_hypercube(r, s, t, p=1)
        assert len(run.output) == count_triangles(edges)


class TestOtherQueries:
    def test_two_way_join_via_hypercube(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        r = uniform_relation("R", ["x", "y"], 200, 30, seed=1)
        s = uniform_relation("S", ["y", "z"], 200, 30, seed=2)
        run = hypercube_join(q, {"R": r, "S": s}, p=9)
        assert sorted(run.output.rows()) == sorted(
            q.evaluate({"R": r, "S": s}).rows()
        )

    def test_star_query(self):
        q = star_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], 100, 15, seed=i)
            for i in (1, 2, 3)
        }
        run = hypercube_join(q, rels, p=8)
        assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_path_query(self):
        q = path_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 150, 20, seed=i)
            for i in (1, 2, 3)
        }
        run = hypercube_join(q, rels, p=16)
        assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_attribute_order_mismatch_handled(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        r = Relation("R", ["y", "x"], [(2, 1)])
        s = Relation("S", ["y", "z"], [(2, 3)])
        run = hypercube_join(q, {"R": r, "S": s}, p=4)
        assert run.output.rows() == [(1, 2, 3)]

    def test_wrong_attributes_rejected(self):
        q = triangle_query()
        bad = {"R": Relation("R", ["a", "b"]), "S": Relation("S", ["y", "z"]),
               "T": Relation("T", ["z", "x"])}
        with pytest.raises(QueryError):
            hypercube_join(q, bad, p=4)

    def test_missing_relation_rejected(self):
        with pytest.raises(QueryError):
            hypercube_join(triangle_query(), {}, p=4)


class TestShapesAndLoads:
    def test_cube_shares_for_triangle(self):
        edges = random_edges(300, 40, seed=5)
        r, s, t = triangle_relations(edges)
        run = triangle_hypercube(r, s, t, p=27)
        assert run.details["shares"] == {"x": 3, "y": 3, "z": 3}

    def test_load_scales_as_p_to_two_thirds(self):
        # Slide 36: L = O(N / p^(2/3)) on skew-free input.
        n = 2000
        edges = random_edges(n, 500, seed=6)
        r, s, t = triangle_relations(edges)
        l1 = triangle_hypercube(r, s, t, p=1).load
        l8 = triangle_hypercube(r, s, t, p=8).load
        l64 = triangle_hypercube(r, s, t, p=64).load
        # p=8 -> /4, p=64 -> /16 relative to one server (3N load there).
        assert l8 < l1 / 2.5
        assert l64 < l8 / 2.5

    def test_replication_factor(self):
        # Each tuple of a binary atom in a cube grid is replicated to
        # p^(1/3) servers: total communication = 3 * N * p^(1/3).
        n = 500
        edges = random_edges(n, 100, seed=7)
        r, s, t = triangle_relations(edges)
        run = triangle_hypercube(r, s, t, p=27)
        assert run.stats.total_communication == 3 * n * 3

    def test_explicit_shares_override(self):
        edges = random_edges(100, 30, seed=8)
        r, s, t = triangle_relations(edges)
        run = hypercube_join(
            triangle_query(),
            {"R": r, "S": s, "T": t},
            p=8,
            shares={"x": 2, "y": 2, "z": 2},
        )
        assert run.details["shares"] == {"x": 2, "y": 2, "z": 2}
        assert len(run.output) == count_triangles(edges)

    def test_oversized_shares_rejected(self):
        edges = random_edges(50, 20, seed=9)
        r, s, t = triangle_relations(edges)
        with pytest.raises(QueryError):
            hypercube_join(
                triangle_query(),
                {"R": r, "S": s, "T": t},
                p=4,
                shares={"x": 2, "y": 2, "z": 2},
            )

    def test_skew_free_matching_data_balanced(self):
        # Matching-degree relations: the load should sit near its mean.
        q = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        r = matching_relation("R", ["x", "y"], 1024)
        s = matching_relation("S", ["y", "z"], 1024)
        run = hypercube_join(q, {"R": r, "S": s}, p=16)
        round_stats = run.stats.rounds[0]
        assert round_stats.imbalance < 1.6


class TestLocalEvaluators:
    def test_generic_local_matches_plan_local(self):
        from repro.multiway.hypercube import hypercube_join

        edges = random_edges(150, 25, seed=11)
        r, s, t = triangle_relations(edges)
        rels = {"R": r, "S": s, "T": t}
        plan = hypercube_join(triangle_query(), rels, p=8, local="plan")
        generic = hypercube_join(triangle_query(), rels, p=8, local="generic")
        assert sorted(plan.output.rows()) == sorted(generic.output.rows())
        # Same routing => identical communication costs.
        assert plan.stats.total_communication == generic.stats.total_communication

    def test_unknown_local_rejected(self):
        from repro.multiway.hypercube import hypercube_join

        edges = random_edges(10, 10, seed=12)
        r, s, t = triangle_relations(edges)
        with pytest.raises(QueryError):
            hypercube_join(
                triangle_query(), {"R": r, "S": s, "T": t}, p=4, local="magic"
            )
