"""Tests for SkewHC (slides 46–51)."""

import pytest

from repro.data.generators import uniform_relation
from repro.data.graphs import count_triangles, power_law_edges, random_edges, triangle_relations
from repro.data.relation import Relation
from repro.multiway.hypercube import triangle_hypercube
from repro.multiway.skewhc import find_heavy_values, skewhc_join
from repro.query.cq import triangle_query, two_way_join


class TestFindHeavyValues:
    def test_detects_hub(self):
        edges = [(i, 0) for i in range(20)] + [(5, i) for i in range(3, 9)]
        e = Relation("E", ["u", "v"], sorted(set(edges)))
        r, s, t = triangle_relations(e)
        q = triangle_query()
        heavy = find_heavy_values(q, {"R": r, "S": s, "T": t}, threshold=10)
        # Vertex 0 has in-degree 20: heavy on y (R's target) and z (S's target).
        assert 0 in heavy["y"]
        assert 0 in heavy["z"]

    def test_no_heavy_on_uniform(self):
        edges = random_edges(100, 200, seed=1)
        r, s, t = triangle_relations(edges)
        heavy = find_heavy_values(
            triangle_query(), {"R": r, "S": s, "T": t}, threshold=10
        )
        assert all(not v for v in heavy.values())


class TestCorrectness:
    def test_uniform_triangles(self):
        edges = random_edges(200, 30, seed=2)
        r, s, t = triangle_relations(edges)
        run = skewhc_join(triangle_query(), {"R": r, "S": s, "T": t}, p=8)
        assert len(run.output) == count_triangles(edges)

    def test_matches_hypercube_output(self):
        edges = random_edges(150, 25, seed=3)
        r, s, t = triangle_relations(edges)
        hc = triangle_hypercube(r, s, t, p=8)
        shc = skewhc_join(triangle_query(), {"R": r, "S": s, "T": t}, p=8)
        assert sorted(shc.output.rows()) == sorted(hc.output.rows())

    def test_skewed_graph(self):
        edges = power_law_edges(300, 80, s=1.5, seed=4)
        r, s, t = triangle_relations(edges)
        run = skewhc_join(triangle_query(), {"R": r, "S": s, "T": t}, p=8)
        assert len(run.output) == count_triangles(edges)

    def test_hub_graph_with_triangles(self):
        hub = [(i, 0) for i in range(1, 60)]
        closing = [(0, i) for i in range(1, 60, 4)] + [
            (i, i + 1) for i in range(1, 50, 4)
        ]
        e = Relation("E", ["u", "v"], sorted(set(hub + closing)))
        r, s, t = triangle_relations(e)
        run = skewhc_join(triangle_query(), {"R": r, "S": s, "T": t}, p=8)
        assert len(run.output) == count_triangles(e)

    def test_two_way_join_with_skew(self):
        q = two_way_join()
        rows_r = [(i, 0) for i in range(40)] + [(100 + i, i) for i in range(1, 20)]
        rows_s = [(0, i) for i in range(40)] + [(i, 200 + i) for i in range(1, 20)]
        r = Relation("R", ["x", "y"], rows_r)
        s = Relation("S", ["y", "z"], rows_s)
        run = skewhc_join(q, {"R": r, "S": s}, p=8)
        assert sorted(run.output.rows()) == sorted(
            q.evaluate({"R": r, "S": s}).rows()
        )

    def test_bag_multiplicities_with_duplicates(self):
        q = two_way_join()
        r = Relation("R", ["x", "y"], [(1, 0), (1, 0), (2, 5)])
        s = Relation("S", ["y", "z"], [(0, 9), (0, 9), (5, 7)])
        run = skewhc_join(q, {"R": r, "S": s}, p=4, threshold=2)
        assert sorted(run.output.rows()) == sorted(
            q.evaluate({"R": r, "S": s}).rows()
        )

    def test_empty_inputs(self):
        q = triangle_query()
        empty = {
            "R": Relation("R", ["x", "y"]),
            "S": Relation("S", ["y", "z"]),
            "T": Relation("T", ["z", "x"]),
        }
        run = skewhc_join(q, empty, p=4)
        assert len(run.output) == 0


class TestCosts:
    def test_one_round_in_model(self):
        edges = power_law_edges(300, 80, s=1.4, seed=5)
        r, s, t = triangle_relations(edges)
        run = skewhc_join(triangle_query(), {"R": r, "S": s, "T": t}, p=8)
        assert run.rounds <= 2  # each residual is 1 HyperCube round

    def test_beats_hypercube_under_z_skew(self):
        # The slide-51 regime: ψ* = 2 load IN/p^(1/2) vs HyperCube's
        # degraded behaviour when one z-value dominates.
        n, p = 420, 16
        r = uniform_relation("R", ["x", "y"], n, 40, seed=1)
        s_rows = [(i % 40, 0) for i in range(n - 60)] + [
            (i % 40, 1 + i % 25) for i in range(60)
        ]
        t_rows = [(0, i % 40) for i in range(n - 60)] + [
            (1 + i % 25, i % 40) for i in range(60)
        ]
        s = Relation("S", ["y", "z"], s_rows)
        t = Relation("T", ["z", "x"], t_rows)
        q = triangle_query()
        hc = triangle_hypercube(r, s, t, p=p)
        shc = skewhc_join(q, {"R": r, "S": s, "T": t}, p=p)
        assert sorted(shc.output.rows()) == sorted(hc.output.rows())
        assert shc.load < hc.load

    def test_details_reported(self):
        edges = random_edges(100, 30, seed=6)
        r, s, t = triangle_relations(edges)
        run = skewhc_join(triangle_query(), {"R": r, "S": s, "T": t}, p=4)
        assert "threshold" in run.details
        assert run.details["jobs"] >= 1
