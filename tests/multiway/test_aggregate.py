"""Tests for distributed GROUP BY (slide 52's workload)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import skewed_relation
from repro.data.relation import Relation
from repro.multiway.aggregate import group_by, reference_group_by, two_phase_group_by


def orders(rows):
    return Relation("Orders", ["cust", "month", "price"], rows)


SAMPLE = orders(
    [(1, "jan", 10), (1, "jan", 5), (1, "feb", 2), (2, "jan", 7), (2, "jan", 1)]
)


class TestOnePhase:
    def test_sum_by_two_keys(self):
        out, stats = group_by(SAMPLE, ["cust", "month"], "price", sum, p=3)
        assert sorted(out.rows()) == [
            (1, "feb", 2),
            (1, "jan", 15),
            (2, "jan", 8),
        ]
        assert stats.num_rounds == 1

    def test_matches_reference(self):
        out, _ = group_by(SAMPLE, ["cust"], "price", max, p=4)
        ref = reference_group_by(SAMPLE, ["cust"], "price", max)
        assert sorted(out.rows()) == sorted(ref.rows())

    def test_empty_relation(self):
        out, _ = group_by(orders([]), ["cust"], "price", sum, p=2)
        assert len(out) == 0

    def test_output_schema(self):
        out, _ = group_by(SAMPLE, ["cust"], "price", sum, p=2)
        assert out.schema.attributes == ("cust", "price_agg")


class TestTwoPhase:
    def test_sum_matches_reference(self):
        out, _ = two_phase_group_by(
            SAMPLE, ["cust", "month"], "price", sum, sum, p=3
        )
        ref = reference_group_by(SAMPLE, ["cust", "month"], "price", sum)
        assert sorted(out.rows()) == sorted(ref.rows())

    def test_min_max_count(self):
        for fold, merge in ((min, min), (max, max), (len, sum)):
            out, _ = two_phase_group_by(SAMPLE, ["cust"], "price", fold, merge, p=4)
            ref = reference_group_by(SAMPLE, ["cust"], "price", fold)
            if fold is len:
                # count: local fold counts, merge sums them.
                assert sorted(out.rows()) == sorted(ref.rows())
            else:
                assert sorted(out.rows()) == sorted(ref.rows())

    def test_combiner_caps_load_under_skew(self):
        # One whale customer: one-phase concentrates all its orders on a
        # single server; two-phase ships one partial per source server.
        rel = skewed_relation(
            "Orders", ["order", "cust"], 4000, "cust", universe=100, s=1.6, seed=1
        ).rename({"order": "price"})
        rel = Relation("Orders", ["price", "cust"], rel.rows())
        p = 16
        one, one_stats = group_by(rel, ["cust"], "price", sum, p=p)
        two, two_stats = two_phase_group_by(rel, ["cust"], "price", sum, sum, p=p)
        assert sorted(one.rows()) == sorted(two.rows())
        assert two_stats.max_load < one_stats.max_load / 2
        # Two-phase load is bounded by the number of distinct groups.
        assert two_stats.max_load <= 100

    rows = st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 5), st.integers(-50, 50)),
        max_size=60,
    )

    @given(rows, st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_both_match_reference(self, raw, p):
        rel = orders(raw)
        ref = sorted(reference_group_by(rel, ["cust", "month"], "price", sum).rows())
        one, _ = group_by(rel, ["cust", "month"], "price", sum, p=p)
        two, _ = two_phase_group_by(rel, ["cust", "month"], "price", sum, sum, p=p)
        assert sorted(one.rows()) == ref
        assert sorted(two.rows()) == ref
