"""Tests for serial Yannakakis (slides 64–77)."""

import pytest

from repro.data.generators import uniform_relation
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.multiway.yannakakis import yannakakis
from repro.query.cq import Atom, ConjunctiveQuery, path_query, star_query, triangle_query
from repro.query.ghd import path_chain_ghd


def slide64_query():
    return ConjunctiveQuery(
        [
            Atom("R1", ["A0", "A1"]),
            Atom("R2", ["A0", "A2"]),
            Atom("R3", ["A1", "A3"]),
            Atom("R4", ["A2", "A4"]),
            Atom("R5", ["A2", "A5"]),
        ]
    )


def slide65_instance():
    """The exact instance walked through on slides 65–77."""
    r1 = Relation("R1", ["A0", "A1"], [("a01", "a11"), ("a02", "a12"), ("a03", "a13")])
    r2 = Relation("R2", ["A0", "A2"], [("a01", "a21"), ("a02", "a22"), ("a03", "a23")])
    r3 = Relation("R3", ["A1", "A3"], [("a11", "a31"), ("a11", "a32")])
    r4 = Relation("R4", ["A2", "A4"], [("a21", "a41"), ("a22", "a42")])
    r5 = Relation("R5", ["A2", "A5"], [("a21", "a51"), ("a25", "a55")])
    return {"R1": r1, "R2": r2, "R3": r3, "R4": r4, "R5": r5}


class TestSlideWalkthrough:
    def test_slide77_output(self):
        q = slide64_query()
        rels = slide65_instance()
        result = yannakakis(q, rels)
        expected = sorted(
            [
                ("a01", "a11", "a21", "a31", "a41", "a51"),
                ("a01", "a11", "a21", "a32", "a41", "a51"),
            ]
        )
        assert sorted(result.output.rows()) == expected

    def test_matches_sequential_evaluation(self):
        q = slide64_query()
        rels = slide65_instance()
        result = yannakakis(q, rels)
        assert sorted(result.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_intermediates_bounded_by_out(self):
        # Slide 77: after full reduction, |Ti| ≤ OUT.
        q = slide64_query()
        rels = slide65_instance()
        result = yannakakis(q, rels)
        assert result.max_intermediate <= len(result.output)

    def test_operation_counts_linear(self):
        # O(n) semijoins + O(n) joins for n atoms.
        q = slide64_query()
        result = yannakakis(q, slide65_instance())
        assert result.semijoin_operations == 2 * 4  # 2 sweeps × (n-1) edges
        assert result.join_operations == 4


class TestGeneralQueries:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_path_queries(self, n):
        q = path_query(n)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 120, 40, seed=i)
            for i in range(1, n + 1)
        }
        result = yannakakis(q, rels)
        assert sorted(result.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_star_query(self):
        q = star_query(4)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], 100, 30, seed=i)
            for i in range(1, 5)
        }
        result = yannakakis(q, rels)
        assert sorted(result.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_custom_ghd(self):
        q = path_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 80, 25, seed=i)
            for i in range(1, 4)
        }
        result = yannakakis(q, rels, ghd=path_chain_ghd(3))
        assert sorted(result.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_empty_output(self):
        q = path_query(2)
        r1 = Relation("R1", ["A0", "A1"], [(1, 2)])
        r2 = Relation("R2", ["A1", "A2"], [(3, 4)])  # no join partner
        result = yannakakis(q, {"R1": r1, "R2": r2})
        assert len(result.output) == 0
        assert result.max_intermediate == 0

    def test_cyclic_rejected(self):
        edges = [(1, 2)]
        rels = {
            "R": Relation("R", ["x", "y"], edges),
            "S": Relation("S", ["y", "z"], edges),
            "T": Relation("T", ["z", "x"], edges),
        }
        with pytest.raises(Exception):
            yannakakis(triangle_query(), rels)

    def test_wide_ghd_rejected(self):
        from repro.query.ghd import path_flat_ghd

        q = path_query(4)
        rels = {
            f"R{i}": Relation(f"R{i}", [f"A{i-1}", f"A{i}"], [(1, 1)])
            for i in range(1, 5)
        }
        with pytest.raises(QueryError):
            yannakakis(q, rels, ghd=path_flat_ghd(4))

    def test_missing_relation_rejected(self):
        with pytest.raises(QueryError):
            yannakakis(path_query(2), {"R1": Relation("R1", ["A0", "A1"])})
