"""Tests for the worst-case optimal (generic) join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.graphs import count_triangles, random_edges, triangle_relations
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.multiway.wcoj import generic_join
from repro.query.cq import Atom, ConjunctiveQuery, cycle_query, path_query, triangle_query


class TestCorrectness:
    def test_triangle_matches_reference(self):
        edges = random_edges(150, 25, seed=1)
        r, s, t = triangle_relations(edges)
        q = triangle_query()
        rels = {"R": r, "S": s, "T": t}
        out = generic_join(q, rels)
        assert len(out) == count_triangles(edges)
        assert sorted(out.rows()) == sorted(q.evaluate(rels).rows())

    def test_path_matches_reference(self):
        q = path_query(3)
        rels = {
            f"R{i}": Relation(
                f"R{i}", [f"A{i-1}", f"A{i}"],
                [((j * i) % 7, (j + i) % 7) for j in range(20)],
            )
            for i in range(1, 4)
        }
        out = generic_join(q, rels)
        assert sorted(out.rows()) == sorted(q.evaluate(rels).rows())

    def test_four_cycle(self):
        q = cycle_query(4)
        edges = random_edges(80, 15, seed=2)
        u, v = edges.schema.attributes
        rels = {
            a.name: edges.rename({u: a.variables[0], v: a.variables[1]}, name=a.name)
            for a in q.atoms
        }
        out = generic_join(q, rels)
        assert sorted(out.rows()) == sorted(q.evaluate(rels).rows())

    def test_bag_multiplicities(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        r = Relation("R", ["x", "y"], [(1, 2), (1, 2)])
        s = Relation("S", ["y", "z"], [(2, 3), (2, 3), (2, 4)])
        out = generic_join(q, {"R": r, "S": s})
        assert sorted(out.rows()) == sorted(q.evaluate({"R": r, "S": s}).rows())
        assert len(out) == 6

    def test_custom_variable_order(self):
        q = triangle_query()
        edges = random_edges(60, 15, seed=3)
        r, s, t = triangle_relations(edges)
        rels = {"R": r, "S": s, "T": t}
        for order in (["z", "x", "y"], ["y", "z", "x"]):
            out = generic_join(q, rels, order=order)
            assert sorted(out.rows()) == sorted(q.evaluate(rels).rows())

    def test_bad_order_rejected(self):
        q = triangle_query()
        with pytest.raises(QueryError):
            generic_join(q, {}, order=["x", "y"])

    def test_missing_relation_rejected(self):
        with pytest.raises(QueryError):
            generic_join(triangle_query(), {})

    rows = st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=20)

    @given(rows, rows, rows)
    @settings(max_examples=20, deadline=None)
    def test_property_triangle_agreement(self, e1, e2, e3):
        q = triangle_query()
        rels = {
            "R": Relation("R", ["x", "y"], e1),
            "S": Relation("S", ["y", "z"], e2),
            "T": Relation("T", ["z", "x"], e3),
        }
        out = generic_join(q, rels)
        assert sorted(out.rows()) == sorted(q.evaluate(rels).rows())


class TestWorstCaseBehaviour:
    def test_no_intermediate_blowup_on_cyclic_query(self):
        """On a dense graph, binary plans materialize a huge R ⋈ S; the
        generic join's work stays near OUT (we check the output is tiny
        even though the pairwise joins are huge)."""
        m = 16
        # Bipartite-ish: R and S join heavily but no triangles close.
        r = Relation("R", ["x", "y"], [(i, j) for i in range(m) for j in range(m)])
        s = Relation("S", ["y", "z"], [(j, 1000 + j) for j in range(m)])
        t = Relation("T", ["z", "x"], [(2000, 0)])  # closes nothing
        q = triangle_query()
        out = generic_join(q, {"R": r, "S": s, "T": t})
        assert len(out) == 0
