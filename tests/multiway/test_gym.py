"""Tests for GYM, vanilla and optimized (slides 78–95)."""

import pytest

from repro.data.generators import uniform_relation
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.multiway.gym import gym
from repro.query.cq import Atom, ConjunctiveQuery, path_query, star_query
from repro.query.ghd import path_balanced_ghd, path_chain_ghd, path_flat_ghd


def star4_relations(n=150, universe=50, seed=0):
    return {
        f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], n, universe, seed=seed + i)
        for i in range(1, 5)
    }


def path_relations(n_atoms, n=120, universe=40, seed=0):
    return {
        f"R{i}": uniform_relation(
            f"R{i}", [f"A{i-1}", f"A{i}"], n, universe, seed=seed + i
        )
        for i in range(1, n_atoms + 1)
    }


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["vanilla", "optimized"])
    def test_star4(self, variant):
        q = star_query(4)
        rels = star4_relations()
        run = gym(q, rels, p=8, variant=variant)
        assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())

    @pytest.mark.parametrize("variant", ["vanilla", "optimized"])
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_paths(self, variant, n):
        q = path_query(n)
        rels = path_relations(n)
        run = gym(q, rels, p=8, variant=variant)
        assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_slide64_query(self):
        q = ConjunctiveQuery(
            [
                Atom("R1", ["A0", "A1"]),
                Atom("R2", ["A0", "A2"]),
                Atom("R3", ["A1", "A3"]),
                Atom("R4", ["A2", "A4"]),
                Atom("R5", ["A2", "A5"]),
            ]
        )
        rels = {
            name: uniform_relation(name, list(q.atom(name).variables), 100, 30, seed=i)
            for i, name in enumerate(["R1", "R2", "R3", "R4", "R5"])
        }
        for variant in ("vanilla", "optimized"):
            run = gym(q, rels, p=8, variant=variant)
            assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_empty_output(self):
        q = path_query(2)
        rels = {
            "R1": Relation("R1", ["A0", "A1"], [(1, 2)]),
            "R2": Relation("R2", ["A1", "A2"], [(9, 9)]),
        }
        run = gym(q, rels, p=4)
        assert len(run.output) == 0

    def test_unknown_variant_rejected(self):
        with pytest.raises(QueryError):
            gym(path_query(2), path_relations(2), p=4, variant="turbo")


class TestRoundCounts:
    def test_optimized_fewer_rounds_on_star(self):
        # Slides 80–94: vanilla star-4 needs ~9 rounds, optimized ~4.
        q = star_query(4)
        rels = star4_relations()
        vanilla = gym(q, rels, p=8, variant="vanilla")
        optimized = gym(q, rels, p=8, variant="optimized")
        assert optimized.rounds < vanilla.rounds
        assert optimized.rounds <= 4

    def test_vanilla_rounds_scale_with_atoms(self):
        q3 = path_query(3)
        q6 = path_query(6)
        r3 = gym(q3, path_relations(3), p=4, variant="vanilla")
        r6 = gym(q6, path_relations(6), p=4, variant="vanilla")
        assert r6.rounds > r3.rounds

    def test_optimized_rounds_scale_with_depth(self):
        # A chain GHD has depth n-1; the balanced GHD has depth O(log n).
        n = 8
        q = path_query(n)
        rels = path_relations(n, n=60, universe=25)
        chain = gym(q, rels, p=8, ghd=path_chain_ghd(n), variant="optimized")
        balanced = gym(q, rels, p=8, ghd=path_balanced_ghd(n), variant="optimized")
        assert balanced.rounds < chain.rounds
        # The balanced GHD reuses atoms, so GYM runs it with set semantics;
        # compare distinct outputs.
        assert balanced.details["set_semantics"]
        assert set(chain.output.rows()) == set(balanced.output.rows())


class TestGHDWidthTradeoff:
    def test_flat_ghd_works_and_is_shallow(self):
        # Slide 95: width n/2, depth 1 — few rounds, heavy bag loads.
        n = 4
        q = path_query(n)
        rels = path_relations(n, n=40, universe=15)
        flat = gym(q, rels, p=8, ghd=path_flat_ghd(n), variant="optimized")
        assert sorted(flat.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_flat_trades_load_for_rounds(self):
        n = 4
        q = path_query(n)
        rels = path_relations(n, n=40, universe=15)
        chain = gym(q, rels, p=8, ghd=path_chain_ghd(n), variant="optimized")
        flat = gym(q, rels, p=8, ghd=path_flat_ghd(n), variant="optimized")
        assert flat.rounds <= chain.rounds
        assert flat.load >= chain.load  # the IN^w bag materialization bites

    def test_details_report_shape(self):
        q = path_query(4)
        rels = path_relations(4, n=40, universe=15)
        run = gym(q, rels, p=4, ghd=path_balanced_ghd(4))
        assert run.details["width"] <= 3
        assert "depth" in run.details


class TestLoadBehaviour:
    def test_load_scales_with_in_plus_out_over_p(self):
        q = star_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], 300, 100, seed=i)
            for i in range(1, 4)
        }
        run_p4 = gym(q, rels, p=4)
        run_p16 = gym(q, rels, p=16)
        assert run_p16.load < run_p4.load
