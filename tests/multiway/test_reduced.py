"""Tests for the reduce-then-HyperCube hybrid (slides 63, 93)."""

import pytest

from repro.data.generators import uniform_relation
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.multiway.hypercube import hypercube_join
from repro.multiway.reduced import reduced_hypercube
from repro.query.cq import Atom, ConjunctiveQuery, path_query, star_query, triangle_query


def path_rels(n, size=150, universe=60, seed=0):
    return {
        f"R{i}": uniform_relation(
            f"R{i}", [f"A{i-1}", f"A{i}"], size, universe, seed=seed + i
        )
        for i in range(1, n + 1)
    }


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_paths_match_reference(self, n):
        q = path_query(n)
        rels = path_rels(n)
        run = reduced_hypercube(q, rels, p=8)
        assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_star_matches_reference(self):
        q = star_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], 150, 80, seed=i)
            for i in range(1, 4)
        }
        run = reduced_hypercube(q, rels, p=8)
        assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_empty_output(self):
        q = path_query(2)
        rels = {
            "R1": Relation("R1", ["A0", "A1"], [(1, 2)]),
            "R2": Relation("R2", ["A1", "A2"], [(9, 9)]),
        }
        run = reduced_hypercube(q, rels, p=4)
        assert len(run.output) == 0
        # Both relations reduce to nothing before the HyperCube round.
        assert run.details["reduction"]["R1"][1] == 0

    def test_cyclic_rejected(self):
        rels = {
            "R": Relation("R", ["x", "y"], [(1, 2)]),
            "S": Relation("S", ["y", "z"], [(2, 3)]),
            "T": Relation("T", ["z", "x"], [(3, 1)]),
        }
        with pytest.raises(Exception):
            reduced_hypercube(triangle_query(), rels, p=4)

    def test_missing_relation_rejected(self):
        with pytest.raises(QueryError):
            reduced_hypercube(path_query(2), {}, p=4)


class TestWhereItWins:
    def test_selective_query_beats_plain_hypercube(self):
        """Slide 63's upshot: semijoins shrink the one-round load when
        the output is small — non-joining filler dominates the inputs."""
        q = path_query(3)
        # 90% of every relation joins nothing.
        rels = {}
        for i in range(1, 4):
            joining = [(j % 10, j % 10) for j in range(30)]
            filler = [(1000 * i + j, 2000 * i + j) for j in range(270)]
            rels[f"R{i}"] = Relation(
                f"R{i}", [f"A{i-1}", f"A{i}"], joining + filler
            )
        plain = hypercube_join(q, rels, p=16)
        hybrid = reduced_hypercube(q, rels, p=16)
        assert sorted(hybrid.output.rows()) == sorted(plain.output.rows())
        # The final one-round join round is much cheaper after reduction
        # (the total run adds the semijoin rounds, but the max one-round
        # load drops).
        hc_round_load = max(
            r.max_load for r in hybrid.stats.rounds if r.label == "hypercube"
        )
        assert hc_round_load < plain.load / 2

    def test_reduction_ratios_reported(self):
        q = path_query(2)
        rels = {
            "R1": Relation("R1", ["A0", "A1"], [(1, 2), (3, 4)]),
            "R2": Relation("R2", ["A1", "A2"], [(2, 5)]),
        }
        run = reduced_hypercube(q, rels, p=4)
        assert run.details["reduction"]["R1"] == (2, 1)
        assert run.details["reduction"]["R2"] == (1, 1)

    def test_rounds_are_depth_plus_one(self):
        q = path_query(4)
        rels = path_rels(4, size=80, universe=30)
        run = reduced_hypercube(q, rels, p=8)
        # up sweep + down sweep + 1 HyperCube round: O(depth).
        assert run.rounds <= 2 * 3 + 1
