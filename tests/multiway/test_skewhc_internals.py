"""Tests for SkewHC's internal decomposition machinery."""

import pytest

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.multiway.skewhc import _build_job, _residual_jobs, find_heavy_values, skewhc_join
from repro.query.cq import triangle_query, two_way_join


def tiny_triangle():
    # y = 0 is heavy; everything else light.
    r = Relation("R", ["x", "y"], [(i, 0) for i in range(6)] + [(9, 9)])
    s = Relation("S", ["y", "z"], [(0, i) for i in range(6)] + [(9, 8)])
    t = Relation("T", ["z", "x"], [(i, j) for i in range(3) for j in range(3)])
    return {"R": r, "S": s, "T": t}


class TestBuildJob:
    def test_light_job_restricts_heavy_values_out(self):
        q = triangle_query()
        rels = tiny_triangle()
        heavy = {"x": set(), "y": {0}, "z": set()}
        job = _build_job(q, rels, heavy, bound={})
        assert job is not None
        # No y=0 rows remain in the light R restriction.
        assert all(row[1] != 0 for row in job.restricted["R"])

    def test_heavy_job_binds_value(self):
        q = triangle_query()
        rels = tiny_triangle()
        heavy = {"x": set(), "y": {0}, "z": set()}
        job = _build_job(q, rels, heavy, bound={"y": 0})
        assert job is not None
        # R's residual drops the bound y column: schema is (x,).
        assert job.restricted["R"].schema.attributes == ("x",)
        assert len(job.restricted["R"]) == 6

    def test_empty_restriction_returns_none(self):
        q = triangle_query()
        rels = tiny_triangle()
        heavy = {"x": set(), "y": {0, 42}, "z": set()}
        # y=42 appears nowhere: the job is provably empty.
        assert _build_job(q, rels, heavy, bound={"y": 42}) is None

    def test_vanished_atom_multiplicity(self):
        q = two_way_join()
        r = Relation("R", ["x", "y"], [(1, 0)])
        s = Relation("S", ["y", "z"], [(0, 5), (0, 5)])
        heavy = {"x": {1}, "y": {0}, "z": {5}}
        job = _build_job(q, {"R": r, "S": s}, heavy, bound={"x": 1, "y": 0, "z": 5})
        assert job is not None
        assert job.multiplicity == 2  # two identical S rows


class TestResidualJobs:
    def test_job_count_bounded(self):
        q = triangle_query()
        rels = tiny_triangle()
        heavy = find_heavy_values(q, rels, threshold=5)
        jobs = _residual_jobs(q, rels, heavy, max_combinations=1000)
        # At least the all-light job plus the y=0 job.
        assert len(jobs) >= 2

    def test_combination_explosion_guarded(self):
        q = triangle_query()
        rels = tiny_triangle()
        heavy = {"x": set(range(50)), "y": set(range(50)), "z": set(range(50))}
        with pytest.raises(QueryError):
            _residual_jobs(q, rels, heavy, max_combinations=10)


class TestThresholdOverride:
    def test_zero_heavy_with_huge_threshold(self):
        q = triangle_query()
        rels = tiny_triangle()
        run = skewhc_join(q, rels, p=4, threshold=10**9)
        assert run.details["jobs"] == 1  # only the all-light job
        expected = q.evaluate(rels)
        assert sorted(run.output.rows()) == sorted(expected.rows())

    def test_tiny_threshold_everything_heavy_still_correct(self):
        q = triangle_query()
        rels = tiny_triangle()
        run = skewhc_join(q, rels, p=4, threshold=1)
        expected = q.evaluate(rels)
        assert sorted(run.output.rows()) == sorted(expected.rows())
