"""Tests for iterative binary join plans (slides 52, 57, 63)."""

import pytest

from repro.data.generators import matching_relation, uniform_relation
from repro.data.graphs import count_triangles, random_edges, triangle_relations
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.multiway.binary_plans import binary_join_plan
from repro.query.cq import path_query, star_query, triangle_query


class TestCorrectness:
    def test_triangle(self):
        edges = random_edges(200, 25, seed=1)
        r, s, t = triangle_relations(edges)
        run = binary_join_plan(triangle_query(), {"R": r, "S": s, "T": t}, p=8)
        assert len(run.output) == count_triangles(edges)

    def test_path(self):
        q = path_query(4)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 120, 15, seed=i)
            for i in range(1, 5)
        }
        run = binary_join_plan(q, rels, p=8)
        assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_star(self):
        q = star_query(3)
        rels = {
            f"R{i}": uniform_relation(f"R{i}", ["A0", f"A{i}"], 120, 15, seed=i)
            for i in range(1, 4)
        }
        run = binary_join_plan(q, rels, p=8)
        assert sorted(run.output.rows()) == sorted(q.evaluate(rels).rows())

    def test_custom_order(self):
        edges = random_edges(150, 25, seed=2)
        r, s, t = triangle_relations(edges)
        run = binary_join_plan(
            triangle_query(), {"R": r, "S": s, "T": t}, p=8, order=["T", "R", "S"]
        )
        assert len(run.output) == count_triangles(edges)

    def test_bad_order_rejected(self):
        edges = random_edges(10, 10, seed=3)
        r, s, t = triangle_relations(edges)
        with pytest.raises(QueryError):
            binary_join_plan(
                triangle_query(), {"R": r, "S": s, "T": t}, p=4, order=["R", "S"]
            )

    def test_disconnected_order_uses_cartesian(self):
        # Joining R then T first shares only x... R(x,y) and T(z,x) share x;
        # to force a Cartesian step use a product query.
        from repro.query.cq import Atom, ConjunctiveQuery

        q = ConjunctiveQuery([Atom("R", ["x"]), Atom("S", ["z"])])
        r = Relation("R", ["x"], [(1,), (2,)])
        s = Relation("S", ["z"], [(7,), (8,)])
        run = binary_join_plan(q, {"R": r, "S": s}, p=4)
        assert len(run.output) == 4


class TestCosts:
    def test_rounds_is_atoms_minus_one(self):
        q = path_query(5)
        rels = {
            f"R{i}": matching_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 100)
            for i in range(1, 6)
        }
        run = binary_join_plan(q, rels, p=4)
        assert run.rounds == 4

    def test_matching_data_no_intermediate_growth(self):
        # Slide 57: extreme skew-free data -> intermediates never grow.
        q = path_query(4)
        rels = {
            f"R{i}": matching_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 200)
            for i in range(1, 5)
        }
        run = binary_join_plan(q, rels, p=4)
        assert max(run.details["intermediate_sizes"]) <= 200

    def test_matching_data_load_is_in_over_p(self):
        q = path_query(3)
        n, p = 400, 8
        rels = {
            f"R{i}": matching_relation(f"R{i}", [f"A{i-1}", f"A{i}"], n)
            for i in range(1, 4)
        }
        run = binary_join_plan(q, rels, p=p)
        assert run.load <= 2.0 * 2 * n / p

    def test_triangle_intermediate_blowup_on_dense_graph(self):
        # Slide 63: a dense-ish graph makes R ⋈ S much bigger than IN,
        # which the one-round HyperCube never materializes.
        edges = random_edges(400, 25, seed=4)  # dense: 400 edges, 25 nodes
        r, s, t = triangle_relations(edges)
        run = binary_join_plan(triangle_query(), {"R": r, "S": s, "T": t}, p=8)
        sizes = run.details["intermediate_sizes"]
        assert max(sizes) > 3 * len(r)

    def test_details_record_order(self):
        edges = random_edges(50, 20, seed=5)
        r, s, t = triangle_relations(edges)
        run = binary_join_plan(triangle_query(), {"R": r, "S": s, "T": t}, p=4)
        assert run.details["order"] == ["R", "S", "T"]
        assert len(run.details["intermediate_sizes"]) == 3
