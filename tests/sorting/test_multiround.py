"""Tests for the multi-round (Goodrich-style) sample sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.multiround import expected_rounds, multiround_sort


class TestCorrectness:
    def test_sorts_random_data(self):
        rng = np.random.default_rng(0)
        items = rng.integers(0, 10**6, size=2000).tolist()
        out, _ = multiround_sort(items, p=16, load_cap=400)
        assert out == sorted(items)

    def test_sorts_with_heavy_duplicates(self):
        items = [5] * 1000 + list(range(500))
        out, _ = multiround_sort(items, p=8, load_cap=300)
        assert out == sorted(items)

    def test_single_server(self):
        out, stats = multiround_sort([3, 1, 2], p=1, load_cap=10)
        assert out == [1, 2, 3]
        assert stats.num_rounds == 0  # nothing to exchange

    def test_empty(self):
        out, _ = multiround_sort([], p=4, load_cap=10)
        assert out == []

    def test_invalid_load_cap(self):
        with pytest.raises(ValueError):
            multiround_sort([1], p=2, load_cap=1)

    @given(st.lists(st.integers(-500, 500), max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_property_sorts_anything(self, items):
        out, _ = multiround_sort(items, p=6, load_cap=64)
        assert out == sorted(items)


class TestRoundScaling:
    def test_small_cap_needs_more_rounds(self):
        rng = np.random.default_rng(1)
        items = rng.integers(0, 10**9, size=4096).tolist()
        _, tight = multiround_sort(items, p=64, load_cap=80)
        _, loose = multiround_sort(items, p=64, load_cap=4096)
        assert tight.num_rounds > loose.num_rounds

    def test_rounds_track_log_l_n(self):
        # r should grow like log_L(N): quadrupling L roughly halves depth
        # in the regime p = N/L.
        n = 4096
        rng = np.random.default_rng(2)
        items = rng.integers(0, 10**9, size=n).tolist()
        _, s_small = multiround_sort(items, p=256, load_cap=16)
        _, s_big = multiround_sort(items, p=16, load_cap=256)
        assert s_small.num_rounds > s_big.num_rounds

    def test_expected_rounds_formula(self):
        assert expected_rounds(10**6, 10**3) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            expected_rounds(10, 1)
