"""Tests for PSRS: correctness, load, and round count."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.psrs import psrs_sort


class TestCorrectness:
    def test_sorts_random_data(self):
        rng = np.random.default_rng(0)
        items = rng.integers(0, 10**6, size=2000).tolist()
        out, _stats = psrs_sort(items, p=8)
        assert out == sorted(items)

    def test_sorts_with_duplicates(self):
        items = [3, 1, 3, 2, 2, 3, 1] * 50
        out, _ = psrs_sort(items, p=4)
        assert out == sorted(items)

    def test_sorts_already_sorted(self):
        items = list(range(500))
        out, _ = psrs_sort(items, p=5)
        assert out == items

    def test_sorts_reverse_sorted(self):
        items = list(range(500, 0, -1))
        out, _ = psrs_sort(items, p=5)
        assert out == sorted(items)

    def test_custom_key(self):
        items = [(1, "b"), (0, "z"), (2, "a")] * 10
        out, _ = psrs_sort(items, p=3, key=lambda t: t[1])
        assert [t[1] for t in out] == sorted(t[1] for t in items)

    def test_single_server(self):
        out, stats = psrs_sort([4, 2, 7], p=1)
        assert out == [2, 4, 7]

    def test_empty_input(self):
        out, _ = psrs_sort([], p=4)
        assert out == []

    def test_fewer_items_than_servers(self):
        out, _ = psrs_sort([3, 1], p=8)
        assert out == [1, 3]

    def test_random_sampling_variant(self):
        rng = np.random.default_rng(1)
        items = rng.integers(0, 10**6, size=1500).tolist()
        out, _ = psrs_sort(items, p=6, use_random_sampling=True)
        assert out == sorted(items)

    @given(st.lists(st.integers(-1000, 1000), max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_property_sorts_anything(self, items):
        out, _ = psrs_sort(items, p=4)
        assert out == sorted(items)


class TestCosts:
    def test_three_rounds(self):
        rng = np.random.default_rng(2)
        items = rng.integers(0, 10**6, size=1000).tolist()
        _, stats = psrs_sort(items, p=8)
        assert stats.num_rounds == 3

    def test_partition_load_near_n_over_p(self):
        # Slide 102: L = O(N/p) when p << N^(1/3).
        n, p = 8000, 8  # p^3 = 512 << 8000
        rng = np.random.default_rng(3)
        items = rng.integers(0, 10**9, size=n).tolist()
        _, stats = psrs_sort(items, p=p)
        assert stats.load_of("psrs-partition") < 2.0 * n / p

    def test_sample_gather_load_is_p_squared(self):
        n, p = 5000, 10
        rng = np.random.default_rng(4)
        items = rng.integers(0, 10**9, size=n).tolist()
        _, stats = psrs_sort(items, p=p)
        assert stats.load_of("psrs-sample-gather") == p * (p - 1)

    def test_load_decreases_with_more_servers(self):
        rng = np.random.default_rng(5)
        items = rng.integers(0, 10**9, size=6000).tolist()
        _, s4 = psrs_sort(items, p=4)
        _, s16 = psrs_sort(items, p=16)
        assert s16.load_of("psrs-partition") < s4.load_of("psrs-partition")

    def test_skewed_duplicate_heavy_data_still_bounded(self):
        # Massive duplication stresses splitter ties.
        items = [7] * 3000 + [1, 2, 3] * 200
        out, _stats = psrs_sort(items, p=6)
        assert out == sorted(items)
