"""Tests for the sort-based similarity (band) join (slide 99)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.sorting.band_join import band_join, reference_band_join


def rel_of(name, key, values, payload_offset=0):
    return Relation(
        name, [key, "tag"], [(v, payload_offset + i) for i, v in enumerate(values)]
    )


class TestCorrectness:
    def test_small_example(self):
        r = rel_of("R", "a", [1, 5, 10])
        s = rel_of("S", "b", [2, 6, 20], payload_offset=100)
        run = band_join(r, s, "a", "b", epsilon=1.5, p=3)
        expected = reference_band_join(r, s, "a", "b", 1.5)
        assert sorted(run.output.rows()) == expected
        assert len(expected) == 2  # (1,2) and (5,6)

    def test_random_uniform(self):
        rng = np.random.default_rng(1)
        r = rel_of("R", "a", rng.uniform(0, 100, size=150).tolist())
        s = rel_of("S", "b", rng.uniform(0, 100, size=150).tolist(), 1000)
        run = band_join(r, s, "a", "b", epsilon=0.8, p=6)
        assert sorted(run.output.rows()) == reference_band_join(r, s, "a", "b", 0.8)

    def test_epsilon_zero_is_equijoin(self):
        r = rel_of("R", "a", [1, 2, 3, 3])
        s = rel_of("S", "b", [3, 4], payload_offset=50)
        run = band_join(r, s, "a", "b", epsilon=0, p=3)
        assert len(run.output) == 2  # the two a=3 rows match b=3

    def test_huge_epsilon_is_full_product(self):
        r = rel_of("R", "a", [1, 2, 3])
        s = rel_of("S", "b", [100, 200], payload_offset=9)
        run = band_join(r, s, "a", "b", epsilon=10**6, p=4)
        assert len(run.output) == 6

    def test_boundary_pairs_not_missed_or_duplicated(self):
        # Dense duplicates around likely splitter values.
        r = rel_of("R", "a", [10] * 30 + [20] * 30)
        s = rel_of("S", "b", [11] * 30 + [19] * 30, payload_offset=500)
        run = band_join(r, s, "a", "b", epsilon=1, p=5)
        expected = reference_band_join(r, s, "a", "b", 1)
        assert sorted(run.output.rows()) == expected

    def test_negative_epsilon_rejected(self):
        r = rel_of("R", "a", [1])
        s = rel_of("S", "b", [1], 5)
        with pytest.raises(ValueError):
            band_join(r, s, "a", "b", epsilon=-1, p=2)

    def test_empty_inputs(self):
        r = Relation("R", ["a", "tag"])
        s = rel_of("S", "b", [1, 2], 5)
        run = band_join(r, s, "a", "b", epsilon=1, p=3)
        assert len(run.output) == 0

    @given(
        st.lists(st.integers(0, 40), max_size=30),
        st.lists(st.integers(0, 40), max_size=30),
        st.integers(0, 8),
        st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_bruteforce(self, r_vals, s_vals, eps, p):
        r = rel_of("R", "a", r_vals)
        s = rel_of("S", "b", s_vals, payload_offset=1000)
        run = band_join(r, s, "a", "b", epsilon=eps, p=p)
        assert sorted(run.output.rows()) == reference_band_join(r, s, "a", "b", eps)


class TestCosts:
    def test_loads_reasonable_for_small_epsilon(self):
        rng = np.random.default_rng(2)
        n, p = 2000, 8
        r = rel_of("R", "a", rng.uniform(0, 10_000, size=n).tolist())
        s = rel_of("S", "b", rng.uniform(0, 10_000, size=n).tolist(), 10**6)
        run = band_join(r, s, "a", "b", epsilon=1.0, p=p)
        # Partition ≈ 2N/p; replication adds only boundary items.
        assert run.load < 3 * (2 * n) / p
