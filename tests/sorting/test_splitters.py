"""Tests for sample/splitter selection."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sorting.splitters import (
    bucket_of,
    choose_splitters,
    random_sample,
    regular_sample,
)


class TestRegularSample:
    def test_count(self):
        assert len(regular_sample(list(range(100)), 7)) == 7

    def test_sample_is_spread(self):
        s = regular_sample(list(range(100)), 3)
        assert s == [25, 50, 75]

    def test_short_input_returns_all(self):
        assert regular_sample([1, 2], 5) == [1, 2]

    def test_empty(self):
        assert regular_sample([], 3) == []
        assert regular_sample([1, 2, 3], 0) == []


class TestRandomSample:
    def test_count_and_membership(self):
        items = list(range(50))
        s = random_sample(items, 10, seed=1)
        assert len(s) == 10
        assert all(x in items for x in s)

    def test_no_replacement(self):
        s = random_sample(list(range(50)), 20, seed=2)
        assert len(set(s)) == 20

    def test_deterministic(self):
        assert random_sample(list(range(50)), 5, seed=3) == random_sample(
            list(range(50)), 5, seed=3
        )


class TestChooseSplitters:
    def test_count(self):
        assert len(choose_splitters(list(range(100)), 8)) == 7

    def test_sorted(self):
        s = choose_splitters([5, 3, 9, 1, 7, 2, 8], 4)
        assert s == sorted(s)

    def test_single_bucket_no_splitters(self):
        assert choose_splitters([1, 2, 3], 1) == []

    def test_empty_samples(self):
        assert choose_splitters([], 4) == []


class TestBucketOf:
    def test_boundaries(self):
        splitters = [10, 20]
        assert bucket_of(5, splitters) == 0
        assert bucket_of(10, splitters) == 0  # equal goes left
        assert bucket_of(15, splitters) == 1
        assert bucket_of(25, splitters) == 2

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50), st.integers(0, 1000))
    def test_bucket_respects_order(self, samples, value):
        splitters = choose_splitters(samples, 5)
        b = bucket_of(value, splitters)
        assert 0 <= b <= len(splitters)
        if b > 0:
            assert splitters[b - 1] < value
        if b < len(splitters):
            assert value <= splitters[b]
