"""Fault injection & recovery: lifecycle, determinism, and counters.

Fast seeds — this suite is part of tier-1. The heavier randomized sweep
lives in ``python -m repro selftest --faults``.
"""

import pytest

from repro.data.generators import uniform_relation
from repro.errors import FaultPlanError
from repro.joins.hash_join import parallel_hash_join
from repro.kernels.config import use_kernels
from repro.mpc import (
    ChannelFault,
    Cluster,
    CrashFault,
    FaultPlan,
    FaultStats,
    RecoveryPolicy,
    StragglerFault,
    combine_sequential,
    faulty,
    trace,
)
from repro.mpc.faults import fault_plan_by_default


def shuffle_pipeline(p=4, n=48, depth=3, plan=None, audit=True):
    """``depth`` chained re-hash shuffles; returns (sorted rows, stats)."""
    cluster = Cluster(p, seed=7, faults=plan, audit=audit)
    cluster.scatter_rows([(i, i % 11) for i in range(n)], "F0")
    for step in range(depth):
        h = cluster.hash_function(step, p)
        with cluster.round(f"shuffle-{step}") as rnd:
            for server in cluster.servers:
                for row in server.take(f"F{step}"):
                    rnd.send(h(row[0] + step), f"F{step + 1}", row)
    return sorted(cluster.gather(f"F{depth}")), cluster.stats


BASELINE_ROWS, BASELINE_STATS = shuffle_pipeline()


def assert_transparent(plan, **kwargs):
    """Run the pipeline under ``plan``; it must match the fault-free run
    in rows, per-round loads, and audit — the fault layer's core contract."""
    rows, stats = shuffle_pipeline(plan=plan, **kwargs)
    assert rows == BASELINE_ROWS
    assert [r.received for r in stats.rounds] == [
        r.received for r in BASELINE_STATS.rounds
    ]
    assert stats.audit is not None and stats.audit.ok
    assert stats.faults is not None and stats.faults.clean
    return stats.faults


class TestFaultPlanValidation:
    def test_bad_channel_kind(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(channel_faults=(ChannelFault(0, 0, "corrupt"),))

    def test_negative_round(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(crashes=(CrashFault(-1, 0),))

    def test_nonpositive_count(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(channel_faults=(ChannelFault(0, 0, "drop", count=0),))

    def test_negative_extra_units(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(stragglers=(StragglerFault(0, 0, -1),))

    def test_bad_checkpoint_interval(self):
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(checkpoint_interval=0)

    def test_random_plan_is_reproducible(self):
        assert FaultPlan.random(5, 8) == FaultPlan.random(5, 8)

    def test_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(crashes=(CrashFault(0, 0),)).empty


class TestCrashRecovery:
    def test_crash_is_transparent(self):
        faults = assert_transparent(FaultPlan(crashes=(CrashFault(1, 2),)))
        assert faults.crashes == 1
        assert faults.checkpoint_restores == 1
        assert faults.rounds_replayed == 1
        assert faults.recovery_load > 0

    def test_crash_in_final_round(self):
        faults = assert_transparent(FaultPlan(crashes=(CrashFault(2, 0),)))
        assert faults.crashes == 1

    def test_two_simultaneous_crashes_with_replay(self):
        plan = FaultPlan(crashes=(CrashFault(1, 0), CrashFault(1, 3)))
        faults = assert_transparent(plan)
        assert faults.crashes == 2
        assert faults.checkpoint_restores == 2
        assert faults.rounds_replayed == 2

    def test_crash_with_sparse_checkpoints_replays_gap(self):
        plan = FaultPlan(
            crashes=(CrashFault(2, 1),),
            recovery=RecoveryPolicy(checkpoint_interval=3),
        )
        faults = assert_transparent(plan)
        # Checkpoint at round 0; rounds 0 and 1 roll forward from the
        # log, round 2 is speculatively re-executed.
        assert faults.rounds_replayed == 3
        assert faults.checkpoints_taken == 1

    def test_server_out_of_range_wraps_modulo_p(self):
        faults = assert_transparent(FaultPlan(crashes=(CrashFault(0, 6),)))
        assert faults.crashes == 1

    def test_crash_past_last_round_never_fires(self):
        faults = assert_transparent(FaultPlan(crashes=(CrashFault(99, 0),)))
        assert faults.crashes == 0 and faults.injected == 0

    def test_unrecovered_crash_loses_data_but_keeps_accounting(self):
        plan = FaultPlan(
            crashes=(CrashFault(1, 2),),
            recovery=RecoveryPolicy(enabled=False),
        )
        rows, stats = shuffle_pipeline(plan=plan)
        assert len(rows) < len(BASELINE_ROWS)
        assert stats.faults.unrecovered > 0
        # The corruption is data loss, not accounting drift: the audit
        # still balances every barrier it saw.
        assert stats.audit is not None and stats.audit.ok
        assert "UNRECOVERED" in stats.faults.summary()


class TestScatterCrash:
    def test_crash_during_scatter_is_transparent(self):
        faults = assert_transparent(FaultPlan(scatter_crashes=(1,)))
        assert faults.scatter_crashes == 1
        assert faults.recovery_load > 0

    def test_crash_during_scatter_without_recovery(self):
        plan = FaultPlan(
            scatter_crashes=(1,), recovery=RecoveryPolicy(enabled=False)
        )
        rows, stats = shuffle_pipeline(plan=plan)
        assert len(rows) < len(BASELINE_ROWS)
        assert stats.faults.unrecovered > 0


class TestStragglers:
    def test_straggler_only_plan_is_byte_identical(self):
        plan = FaultPlan(
            stragglers=(StragglerFault(0, 1, 7), StragglerFault(2, 3, 2))
        )
        faults = assert_transparent(plan)
        assert faults.straggler_events == 2
        assert faults.straggler_units == 9
        # Stragglers cost time, not data: no recovery work at all.
        assert faults.recovery_load == 0


class TestChannelFaults:
    def test_drop_and_duplicate_on_same_channel(self):
        plan = FaultPlan(
            channel_faults=(
                ChannelFault(1, 2, "drop", count=2),
                ChannelFault(1, 2, "duplicate", count=1),
            )
        )
        faults = assert_transparent(plan)
        assert faults.dropped == 2 and faults.retransmitted == 2
        assert faults.duplicated == 1 and faults.deduplicated == 1

    def test_unrecovered_drop_loses_exactly_count(self):
        plan = FaultPlan(
            channel_faults=(ChannelFault(1, 2, "drop", count=2),),
            recovery=RecoveryPolicy(enabled=False),
        )
        rows, stats = shuffle_pipeline(plan=plan)
        assert len(rows) == len(BASELINE_ROWS) - 2
        assert stats.faults.unrecovered == 2

    def test_unrecovered_duplicate_adds_exactly_count(self):
        plan = FaultPlan(
            channel_faults=(ChannelFault(1, 2, "duplicate", count=3),),
            recovery=RecoveryPolicy(enabled=False),
        )
        rows, stats = shuffle_pipeline(plan=plan)
        assert len(rows) == len(BASELINE_ROWS) + 3
        assert stats.faults.unrecovered == 3

    def test_named_fragment_channel(self):
        plan = FaultPlan(
            channel_faults=(ChannelFault(0, 1, "drop", fragment="F1", count=1),)
        )
        faults = assert_transparent(plan)
        assert faults.dropped == 1

    def test_absent_fragment_is_a_noop(self):
        plan = FaultPlan(
            channel_faults=(ChannelFault(0, 1, "drop", fragment="nope"),)
        )
        faults = assert_transparent(plan)
        assert faults.dropped == 0


class TestDeterminism:
    PLAN = FaultPlan.random(seed=42, p=4)

    def test_same_plan_same_stats_twice(self):
        first_rows, first = shuffle_pipeline(plan=self.PLAN)
        second_rows, second = shuffle_pipeline(plan=self.PLAN)
        assert first_rows == second_rows
        assert first.faults == second.faults
        assert first.summary() == second.summary()
        assert [r.received for r in first.rounds] == [
            r.received for r in second.rounds
        ]

    def test_identical_across_kernel_modes(self):
        results = {}
        for mode in (True, False):
            with use_kernels(mode):
                results[mode] = shuffle_pipeline(plan=self.PLAN)
        rows_on, stats_on = results[True]
        rows_off, stats_off = results[False]
        assert rows_on == rows_off
        assert stats_on.faults == stats_off.faults
        assert stats_on.summary() == stats_off.summary()


class TestAmbientFaulty:
    R = uniform_relation("R", ("a", "b"), 120, 30, seed=1)
    S = uniform_relation("S", ("b", "c"), 120, 30, seed=2)

    def test_faulty_threads_through_algorithm(self):
        plan = FaultPlan(crashes=(CrashFault(0, 1),))
        clean = parallel_hash_join(self.R, self.S, p=4)
        with faulty(plan):
            run = parallel_hash_join(self.R, self.S, p=4)
        assert sorted(run.output.rows()) == sorted(clean.output.rows())
        assert run.stats.faults is not None and run.stats.faults.crashes == 1
        assert clean.stats.faults is None

    def test_faulty_nests_and_restores(self):
        outer = FaultPlan(crashes=(CrashFault(0, 0),))
        inner = FaultPlan()
        assert fault_plan_by_default() is None
        with faulty(outer):
            assert fault_plan_by_default() is outer
            with faulty(inner):
                assert fault_plan_by_default() is inner
            assert fault_plan_by_default() is outer
        assert fault_plan_by_default() is None

    def test_faulty_none_disables(self):
        with faulty(FaultPlan()):
            with faulty(None):
                assert Cluster(2).fault_controller is None


class TestSurfacing:
    def test_trace_appends_fault_summary(self):
        plan = FaultPlan(crashes=(CrashFault(1, 2),))
        _, stats = shuffle_pipeline(plan=plan)
        assert "faults:" in trace(stats)
        assert "rounds replayed" in trace(stats)

    def test_summary_mentions_faults(self):
        plan = FaultPlan(crashes=(CrashFault(1, 2),))
        _, stats = shuffle_pipeline(plan=plan)
        assert "faults=1" in stats.summary()

    def test_clean_run_summary_unchanged(self):
        assert "faults" not in BASELINE_STATS.summary()

    def test_combine_merges_fault_stats(self):
        plan = FaultPlan(crashes=(CrashFault(1, 2),))
        _, first = shuffle_pipeline(plan=plan)
        _, second = shuffle_pipeline(plan=plan)
        combined = combine_sequential(8, [first, second])
        assert combined.faults is not None
        assert combined.faults.crashes == 2

    def test_merged_none_when_no_fault_stats(self):
        assert FaultStats.merged([]) is None
