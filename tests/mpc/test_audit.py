"""Tests for the conservation-invariant audit layer."""

import pytest

from repro.errors import AuditError, LoadExceededError
from repro.mpc.audit import (
    AuditReport,
    AuditViolation,
    audit_enabled_by_default,
    audited,
    verify_combined,
    verify_partition,
)
from repro.mpc.cluster import Cluster, combine_parallel, combine_sequential
from repro.mpc.stats import RoundStats, RunStats


class _LossyList(list):
    """A fragment that silently drops the first row of every delivery."""

    def extend(self, rows):
        rows = list(rows)
        super().extend(rows[1:])


class _DuplicatingList(list):
    """A fragment that duplicates every delivered row."""

    def extend(self, rows):
        rows = list(rows)
        super().extend(rows)
        super().extend(rows)


class TestClusterAudit:
    def test_clean_round_passes(self):
        c = Cluster(2, audit=True)
        with c.round("r") as rnd:
            rnd.send(0, "A", (1,))
            rnd.send(1, "A", (2,))
        report = c.stats.audit
        assert report is not None
        assert report.ok
        assert report.rounds_audited == 1
        assert report.checks_run > 0

    def test_audit_off_by_default(self):
        c = Cluster(2)
        assert c.auditor is None
        assert c.stats.audit is None

    def test_free_round_audited(self):
        c = Cluster(2, audit=True)
        with c.free_round("place") as rnd:
            rnd.send(0, "A", (1,))
        assert c.stats.audit.ok

    def test_dropped_tuple_detected(self):
        """A deliberately broken send — a dropped tuple — must be caught."""
        c = Cluster(2, audit=True)
        c.servers[0].storage["A"] = _LossyList()
        with pytest.raises(AuditError) as exc_info:
            with c.round("r") as rnd:
                rnd.send(0, "A", (1,))
                rnd.send(0, "A", (2,))
        assert exc_info.value.check == "delivery"
        assert not c.stats.audit.ok
        assert c.stats.audit.violations[0].check == "delivery"
        # The cluster is still usable after the failed audit.
        with c.round("again") as rnd:
            rnd.send(1, "B", (3,))
        assert c.servers[1].get("B") == [(3,)]

    def test_duplicated_tuple_detected(self):
        c = Cluster(2, audit=True)
        c.servers[1].storage["A"] = _DuplicatingList()
        with pytest.raises(AuditError) as exc_info:
            with c.round("r") as rnd:
                rnd.send(1, "A", (1,))
        assert exc_info.value.check == "delivery"

    def test_non_strict_records_without_raising(self):
        c = Cluster(2, audit=True)
        c.auditor.strict = False
        c.servers[0].storage["A"] = _LossyList()
        with c.round("r") as rnd:
            rnd.send(0, "A", (1,))
            rnd.send(0, "A", (2,))
        report = c.stats.audit
        assert not report.ok
        # delivery + conservation both tripped; the remaining checks ran.
        checks = {v.check for v in report.violations}
        assert "delivery" in checks and "conservation" in checks
        assert "0 violations" not in report.summary()

    def test_abort_recorded(self):
        c = Cluster(2, audit=True)
        with pytest.raises(RuntimeError):
            with c.round("doomed"):
                raise RuntimeError
        assert c.stats.audit.aborted_rounds == ["doomed"]
        assert "1 aborted" in c.stats.audit.summary()

    def test_rejected_recorded(self):
        c = Cluster(2, audit=True, load_cap=1)
        with pytest.raises(LoadExceededError):
            with c.round("over") as rnd:
                rnd.send(0, "A", (1,))
                rnd.send(0, "A", (2,))
        assert c.stats.audit.rejected_rounds == ["over"]
        assert "1 rejected" in c.stats.audit.summary()

    def test_audit_error_attributes(self):
        err = AuditError("delivery", "lost a tuple")
        assert err.check == "delivery"
        assert err.detail == "lost a tuple"
        assert "delivery" in str(err)


class TestAuditedContext:
    def test_sets_and_restores_default(self):
        assert not audit_enabled_by_default()
        with audited():
            assert audit_enabled_by_default()
            assert Cluster(2).auditor is not None
        assert not audit_enabled_by_default()
        assert Cluster(2).auditor is None

    def test_explicit_flag_wins_over_ambient(self):
        with audited():
            assert Cluster(2, audit=False).auditor is None
        assert Cluster(2, audit=True).auditor is not None

    def test_nesting(self):
        with audited():
            with audited(False):
                assert not audit_enabled_by_default()
            assert audit_enabled_by_default()

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with audited():
                raise RuntimeError
        assert not audit_enabled_by_default()


class TestAuditReport:
    def test_merged_none_when_empty(self):
        assert AuditReport.merged([]) is None

    def test_merged_accumulates(self):
        a = AuditReport(rounds_audited=2, checks_run=10)
        a.aborted_rounds.append("x")
        b = AuditReport(rounds_audited=3, checks_run=15)
        b.violations.append(AuditViolation("r", "delivery", "boom"))
        merged = AuditReport.merged([a, b])
        assert merged.rounds_audited == 5
        assert merged.checks_run == 25
        assert merged.aborted_rounds == ["x"]
        assert not merged.ok

    def test_combine_sequential_merges_reports(self):
        c1 = Cluster(2, audit=True)
        with c1.round("a") as rnd:
            rnd.send(0, "A", (1,))
        c2 = Cluster(2, audit=True)
        with c2.round("b") as rnd:
            rnd.send(1, "B", (2,))
        combined = combine_sequential(2, [c1.stats, c2.stats])
        assert combined.audit is not None
        assert combined.audit.rounds_audited == 2

    def test_combine_without_audits_has_no_report(self):
        a, b = RunStats(2), RunStats(2)
        assert combine_sequential(2, [a, b]).audit is None
        assert combine_parallel(4, [a, b]).audit is None


class TestVerifyPartition:
    def test_within_budget(self):
        verify_partition(5, [RunStats(2), RunStats(3)])

    def test_over_budget_rejected(self):
        with pytest.raises(AuditError) as exc_info:
            verify_partition(4, [RunStats(2), RunStats(3)])
        assert exc_info.value.check == "partition"

    def test_non_positive_p_rejected(self):
        with pytest.raises(AuditError):
            verify_partition(4, [RunStats(2), RunStats(0)])


class TestVerifyCombined:
    def _run(self, p, loads_per_round):
        run = RunStats(p)
        for i, loads in enumerate(loads_per_round):
            run.rounds.append(RoundStats(f"r{i}", loads))
        return run

    def test_sequential_ok(self):
        a = self._run(2, [[1, 2]])
        b = self._run(2, [[3, 0]])
        combined = combine_sequential(2, [a, b], audit=True)
        assert combined.total_communication == 6

    def test_parallel_ok(self):
        a = self._run(2, [[1, 2]])
        b = self._run(2, [[3, 0], [1, 1]])
        combined = combine_parallel(4, [a, b], audit=True)
        assert combined.num_rounds == 2

    def test_bad_c_detected(self):
        a = self._run(2, [[1, 2]])
        broken = RunStats(2)
        broken.rounds.append(RoundStats("r0", [1, 1]))  # C=2, parts claim 3
        with pytest.raises(AuditError) as exc_info:
            verify_combined(broken, [a], parallel=False)
        assert exc_info.value.check == "combine"

    def test_bad_depth_detected(self):
        a = self._run(2, [[1, 2], [1, 1]])
        shallow = combine_parallel(2, [self._run(2, [[1, 2]])])
        shallow.rounds[0].received = [1, 2, 1, 1]  # fix C, keep depth wrong
        with pytest.raises(AuditError):
            verify_combined(shallow, [a], parallel=True)

    def test_parallel_over_budget_rejected(self):
        a = self._run(3, [[1, 1, 1]])
        b = self._run(3, [[1, 1, 1]])
        with pytest.raises(AuditError):
            combine_parallel(4, [a, b], audit=True)
