"""Tests for the MPC cluster simulator: rounds, delivery, load accounting."""

import pytest

from repro.data.relation import Relation
from repro.errors import ClusterError, LoadExceededError
from repro.mpc.cluster import Cluster, combine_parallel
from repro.mpc.stats import RoundStats, RunStats


class TestClusterBasics:
    def test_server_count(self):
        c = Cluster(4)
        assert c.p == 4 and len(c.servers) == 4

    def test_invalid_p(self):
        with pytest.raises(ClusterError):
            Cluster(0)

    def test_scatter_round_robin(self):
        c = Cluster(3)
        r = Relation("R", ["x"], [(i,) for i in range(7)])
        c.scatter(r)
        assert c.fragment_sizes("R") == [3, 2, 2]

    def test_scatter_is_free(self):
        c = Cluster(3)
        c.scatter(Relation("R", ["x"], [(1,), (2,)]))
        assert c.stats.total_communication == 0

    def test_gather_returns_everything(self):
        c = Cluster(3)
        r = Relation("R", ["x"], [(i,) for i in range(7)])
        c.scatter(r)
        assert sorted(c.gather("R")) == sorted(r.rows())

    def test_gather_relation(self):
        c = Cluster(2)
        c.scatter(Relation("R", ["x", "y"], [(1, 2), (3, 4)]))
        g = c.gather_relation("R", "R", ["x", "y"])
        assert sorted(g.rows()) == [(1, 2), (3, 4)]

    def test_drop(self):
        c = Cluster(2)
        c.scatter(Relation("R", ["x"], [(1,), (2,)]))
        c.drop("R")
        assert c.gather("R") == []


class TestRounds:
    def test_delivery_at_barrier(self):
        c = Cluster(2)
        with c.round("r1") as rnd:
            rnd.send(0, "A", (1,))
            rnd.send(1, "A", (2,))
            # Not delivered until the block exits.
            assert c.servers[0].get("A") == []
        assert c.servers[0].get("A") == [(1,)]
        assert c.servers[1].get("A") == [(2,)]

    def test_load_is_tuples_received(self):
        c = Cluster(2)
        with c.round("r1") as rnd:
            for _ in range(5):
                rnd.send(0, "A", (0,))
            rnd.send(1, "A", (0,))
        assert c.stats.rounds[0].received == [5, 1]
        assert c.stats.max_load == 5
        assert c.stats.total_communication == 6

    def test_round_counting_skips_silent_rounds(self):
        c = Cluster(2)
        with c.round("quiet"):
            pass
        with c.round("busy") as rnd:
            rnd.send(0, "A", (1,))
        assert c.stats.num_rounds == 1
        assert len(c.stats.rounds) == 2

    def test_send_out_of_range(self):
        c = Cluster(2)
        with pytest.raises(ClusterError):
            with c.round("r") as rnd:
                rnd.send(5, "A", (1,))

    def test_nested_round_rejected(self):
        c = Cluster(2)
        with c.round("outer"):
            with pytest.raises(ClusterError):
                c.round("inner")

    def test_send_after_close_rejected(self):
        c = Cluster(2)
        with c.round("r") as rnd:
            rnd.send(0, "A", (1,))
        with pytest.raises(ClusterError):
            rnd.send(0, "A", (2,))

    def test_broadcast(self):
        c = Cluster(3)
        with c.round("b") as rnd:
            rnd.broadcast("B", (7,))
        assert all(s.get("B") == [(7,)] for s in c.servers)
        assert c.stats.rounds[0].received == [1, 1, 1]

    def test_broadcast_to_subset(self):
        c = Cluster(4)
        with c.round("b") as rnd:
            rnd.broadcast("B", (7,), servers=[1, 3])
        assert c.stats.rounds[0].received == [0, 1, 0, 1]

    def test_send_many(self):
        c = Cluster(2)
        with c.round("r") as rnd:
            rnd.send_many(1, "A", [(1,), (2,), (3,)])
        assert c.servers[1].get("A") == [(1,), (2,), (3,)]

    def test_custom_units(self):
        c = Cluster(2)
        with c.round("r") as rnd:
            rnd.send(0, "A", (1, 2, 3), units=3)
        assert c.stats.max_load == 3

    def test_free_round_not_charged(self):
        c = Cluster(2)
        with c.free_round("place") as rnd:
            rnd.send(0, "A", (1,))
        assert c.servers[0].get("A") == [(1,)]
        assert c.stats.total_communication == 0

    def test_appends_to_existing_fragment(self):
        c = Cluster(2)
        c.servers[0].put("A", [(0,)])
        with c.round("r") as rnd:
            rnd.send(0, "A", (1,))
        assert c.servers[0].get("A") == [(0,), (1,)]


class TestLoadCap:
    def test_cap_enforced(self):
        c = Cluster(2, load_cap=2)
        with pytest.raises(LoadExceededError) as exc_info:
            with c.round("r") as rnd:
                for _ in range(3):
                    rnd.send(0, "A", (0,))
        assert exc_info.value.server == 0
        assert exc_info.value.load == 3

    def test_cap_not_triggered_at_limit(self):
        c = Cluster(2, load_cap=2)
        with c.round("r") as rnd:
            rnd.send(0, "A", (0,))
            rnd.send(0, "A", (0,))
        assert c.stats.max_load == 2

    def test_free_round_ignores_cap(self):
        c = Cluster(2, load_cap=1)
        with c.free_round("place") as rnd:
            for _ in range(5):
                rnd.send(0, "A", (0,))
        assert c.servers[0].get("A") == [(0,)] * 5


class TestStats:
    def test_round_stats_properties(self):
        rs = RoundStats("x", [4, 2, 0])
        assert rs.max_load == 4
        assert rs.total == 6
        assert rs.mean_load == 2.0
        assert rs.imbalance == 2.0

    def test_empty_round_stats(self):
        rs = RoundStats("x", [])
        assert rs.max_load == 0 and rs.imbalance == 0.0

    def test_run_stats_aggregation(self):
        run = RunStats(2)
        run.rounds.append(RoundStats("a", [3, 1]))
        run.rounds.append(RoundStats("b", [0, 5]))
        assert run.num_rounds == 2
        assert run.max_load == 5
        assert run.total_communication == 9

    def test_load_of_label(self):
        run = RunStats(2)
        run.rounds.append(RoundStats("a", [3, 1]))
        run.rounds.append(RoundStats("a", [4, 0]))
        assert run.load_of("a") == 4
        with pytest.raises(KeyError):
            run.load_of("zz")

    def test_summary_mentions_costs(self):
        run = RunStats(2)
        run.rounds.append(RoundStats("a", [3, 1]))
        assert "L=3" in run.summary() and "r=1" in run.summary()


class TestCombineParallel:
    def test_parallel_subclusters(self):
        a = RunStats(2)
        a.rounds.append(RoundStats("x", [5, 1]))
        b = RunStats(3)
        b.rounds.append(RoundStats("y", [2, 2, 2]))
        b.rounds.append(RoundStats("y2", [1, 1, 1]))
        combined = combine_parallel(5, [a, b])
        assert combined.num_rounds == 2
        assert combined.max_load == 5
        assert combined.rounds[0].total == 6 + 6
        assert combined.rounds[1].total == 3

    def test_empty(self):
        combined = combine_parallel(4, [])
        assert combined.num_rounds == 0


class TestHashFunctionAccess:
    def test_default_buckets_is_p(self):
        c = Cluster(7)
        h = c.hash_function(0)
        assert all(0 <= h(v) < 7 for v in range(100))

    def test_same_seed_same_functions(self):
        c1, c2 = Cluster(5, seed=11), Cluster(5, seed=11)
        h1, h2 = c1.hash_function(3), c2.hash_function(3)
        assert [h1(v) for v in range(50)] == [h2(v) for v in range(50)]
