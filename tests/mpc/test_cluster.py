"""Tests for the MPC cluster simulator: rounds, delivery, load accounting."""

import pytest

from repro.data.relation import Relation
from repro.errors import ClusterError, LoadExceededError
from repro.mpc.cluster import Cluster, combine_parallel, combine_sequential
from repro.mpc.stats import RoundStats, RunStats


class TestClusterBasics:
    def test_server_count(self):
        c = Cluster(4)
        assert c.p == 4 and len(c.servers) == 4

    def test_invalid_p(self):
        with pytest.raises(ClusterError):
            Cluster(0)

    def test_scatter_round_robin(self):
        c = Cluster(3)
        r = Relation("R", ["x"], [(i,) for i in range(7)])
        c.scatter(r)
        assert c.fragment_sizes("R") == [3, 2, 2]

    def test_scatter_is_free(self):
        c = Cluster(3)
        c.scatter(Relation("R", ["x"], [(1,), (2,)]))
        assert c.stats.total_communication == 0

    def test_gather_returns_everything(self):
        c = Cluster(3)
        r = Relation("R", ["x"], [(i,) for i in range(7)])
        c.scatter(r)
        assert sorted(c.gather("R")) == sorted(r.rows())

    def test_gather_relation(self):
        c = Cluster(2)
        c.scatter(Relation("R", ["x", "y"], [(1, 2), (3, 4)]))
        g = c.gather_relation("R", "R", ["x", "y"])
        assert sorted(g.rows()) == [(1, 2), (3, 4)]

    def test_drop(self):
        c = Cluster(2)
        c.scatter(Relation("R", ["x"], [(1,), (2,)]))
        c.drop("R")
        assert c.gather("R") == []


class TestRounds:
    def test_delivery_at_barrier(self):
        c = Cluster(2)
        with c.round("r1") as rnd:
            rnd.send(0, "A", (1,))
            rnd.send(1, "A", (2,))
            # Not delivered until the block exits.
            assert c.servers[0].get("A") == []
        assert c.servers[0].get("A") == [(1,)]
        assert c.servers[1].get("A") == [(2,)]

    def test_load_is_tuples_received(self):
        c = Cluster(2)
        with c.round("r1") as rnd:
            for _ in range(5):
                rnd.send(0, "A", (0,))
            rnd.send(1, "A", (0,))
        assert c.stats.rounds[0].received == [5, 1]
        assert c.stats.max_load == 5
        assert c.stats.total_communication == 6

    def test_round_counting_skips_silent_rounds(self):
        c = Cluster(2)
        with c.round("quiet"):
            pass
        with c.round("busy") as rnd:
            rnd.send(0, "A", (1,))
        assert c.stats.num_rounds == 1
        assert len(c.stats.rounds) == 2

    def test_send_out_of_range(self):
        c = Cluster(2)
        with pytest.raises(ClusterError):
            with c.round("r") as rnd:
                rnd.send(5, "A", (1,))

    def test_nested_round_rejected(self):
        c = Cluster(2)
        with c.round("outer"):
            with pytest.raises(ClusterError):
                c.round("inner")

    def test_send_after_close_rejected(self):
        c = Cluster(2)
        with c.round("r") as rnd:
            rnd.send(0, "A", (1,))
        with pytest.raises(ClusterError):
            rnd.send(0, "A", (2,))

    def test_broadcast(self):
        c = Cluster(3)
        with c.round("b") as rnd:
            rnd.broadcast("B", (7,))
        assert all(s.get("B") == [(7,)] for s in c.servers)
        assert c.stats.rounds[0].received == [1, 1, 1]

    def test_broadcast_to_subset(self):
        c = Cluster(4)
        with c.round("b") as rnd:
            rnd.broadcast("B", (7,), servers=[1, 3])
        assert c.stats.rounds[0].received == [0, 1, 0, 1]

    def test_send_many(self):
        c = Cluster(2)
        with c.round("r") as rnd:
            rnd.send_many(1, "A", [(1,), (2,), (3,)])
        assert c.servers[1].get("A") == [(1,), (2,), (3,)]

    def test_custom_units(self):
        c = Cluster(2)
        with c.round("r") as rnd:
            rnd.send(0, "A", (1, 2, 3), units=3)
        assert c.stats.max_load == 3

    def test_free_round_not_charged(self):
        c = Cluster(2)
        with c.free_round("place") as rnd:
            rnd.send(0, "A", (1,))
        assert c.servers[0].get("A") == [(1,)]
        assert c.stats.total_communication == 0

    def test_appends_to_existing_fragment(self):
        c = Cluster(2)
        c.servers[0].put("A", [(0,)])
        with c.round("r") as rnd:
            rnd.send(0, "A", (1,))
        assert c.servers[0].get("A") == [(0,), (1,)]


class TestLoadCap:
    def test_cap_enforced(self):
        c = Cluster(2, load_cap=2)
        with pytest.raises(LoadExceededError) as exc_info:
            with c.round("r") as rnd:
                for _ in range(3):
                    rnd.send(0, "A", (0,))
        assert exc_info.value.server == 0
        assert exc_info.value.load == 3

    def test_cap_not_triggered_at_limit(self):
        c = Cluster(2, load_cap=2)
        with c.round("r") as rnd:
            rnd.send(0, "A", (0,))
            rnd.send(0, "A", (0,))
        assert c.stats.max_load == 2

    def test_cap_enforced_before_delivery(self):
        """Regression: a cap violation must not mutate server fragments."""
        c = Cluster(2, load_cap=2)
        c.servers[0].put("A", [(99,)])
        with pytest.raises(LoadExceededError):
            with c.round("r") as rnd:
                for _ in range(3):
                    rnd.send(0, "A", (0,))
                rnd.send(1, "B", (1,))
        # Nothing was delivered anywhere — not even to the within-cap server.
        assert c.servers[0].get("A") == [(99,)]
        assert c.servers[1].get("B") == []

    def test_rejected_round_recorded_but_not_aggregated(self):
        """Regression: the violating round's stats stay inspectable."""
        c = Cluster(2, load_cap=2)
        with pytest.raises(LoadExceededError):
            with c.round("over") as rnd:
                for _ in range(5):
                    rnd.send(0, "A", (0,))
        assert len(c.stats.rounds) == 1
        rejected = c.stats.rounds[0]
        assert rejected.label == "over"
        assert not rejected.delivered
        assert rejected.received == [5, 0]
        # Undelivered rounds don't count toward L, r, or C.
        assert c.stats.max_load == 0
        assert c.stats.num_rounds == 0
        assert c.stats.total_communication == 0
        assert "rejected=1" in c.stats.summary()

    def test_cluster_usable_after_cap_violation(self):
        """Regression: LoadExceededError used to wedge the cluster."""
        c = Cluster(2, load_cap=2)
        with pytest.raises(LoadExceededError):
            with c.round("over") as rnd:
                for _ in range(3):
                    rnd.send(0, "A", (0,))
        with c.round("ok") as rnd:
            rnd.send(0, "A", (1,))
            rnd.send(1, "A", (2,))
        assert c.servers[0].get("A") == [(1,)]
        assert c.stats.max_load == 1
        assert c.stats.num_rounds == 1

    def test_free_round_ignores_cap(self):
        c = Cluster(2, load_cap=1)
        with c.free_round("place") as rnd:
            for _ in range(5):
                rnd.send(0, "A", (0,))
        assert c.servers[0].get("A") == [(0,)] * 5


class TestExceptionSafety:
    def test_exception_in_round_releases_cluster(self):
        """Regression: an exception inside `with round(...)` used to leave
        _in_round=True forever ("rounds cannot be nested")."""
        c = Cluster(2)
        with pytest.raises(RuntimeError):
            with c.round("doomed") as rnd:
                rnd.send(0, "A", (1,))
                raise RuntimeError("algorithm bug")
        # The cluster must accept a new round immediately.
        with c.round("next") as rnd:
            rnd.send(1, "A", (2,))
        assert c.servers[1].get("A") == [(2,)]

    def test_aborted_round_delivers_nothing(self):
        c = Cluster(2)
        with pytest.raises(RuntimeError):
            with c.round("doomed") as rnd:
                rnd.send(0, "A", (1,))
                raise RuntimeError
        assert c.servers[0].get("A") == []
        assert c.stats.total_communication == 0
        assert c.stats.rounds == []  # never reached the barrier

    def test_aborted_rounds_counted(self):
        c = Cluster(2)
        for _ in range(3):
            with pytest.raises(ValueError):
                with c.round("x"):
                    raise ValueError
        assert c.stats.aborted == 3
        assert "aborted=3" in c.stats.summary()

    def test_abort_closes_the_round_context(self):
        c = Cluster(2)
        with pytest.raises(RuntimeError):
            with c.round("doomed") as rnd:
                raise RuntimeError
        assert rnd.aborted
        with pytest.raises(ClusterError):
            rnd.send(0, "A", (1,))

    def test_send_error_aborts_cleanly(self):
        c = Cluster(2)
        with pytest.raises(ClusterError):
            with c.round("r") as rnd:
                rnd.send(5, "A", (1,))
        with c.round("again") as rnd:
            rnd.send(0, "A", (1,))
        assert c.servers[0].get("A") == [(1,)]

    def test_exception_in_free_round_releases_cluster(self):
        c = Cluster(2)
        with pytest.raises(RuntimeError):
            with c.free_round("place"):
                raise RuntimeError
        with c.free_round("place2") as rnd:
            rnd.send(0, "A", (1,))
        assert c.servers[0].get("A") == [(1,)]


class TestStats:
    def test_round_stats_properties(self):
        rs = RoundStats("x", [4, 2, 0])
        assert rs.max_load == 4
        assert rs.total == 6
        assert rs.mean_load == 2.0
        assert rs.imbalance == 2.0

    def test_empty_round_stats(self):
        rs = RoundStats("x", [])
        assert rs.max_load == 0 and rs.imbalance == 0.0

    def test_run_stats_aggregation(self):
        run = RunStats(2)
        run.rounds.append(RoundStats("a", [3, 1]))
        run.rounds.append(RoundStats("b", [0, 5]))
        assert run.num_rounds == 2
        assert run.max_load == 5
        assert run.total_communication == 9

    def test_load_of_label(self):
        run = RunStats(2)
        run.rounds.append(RoundStats("a", [3, 1]))
        run.rounds.append(RoundStats("a", [4, 0]))
        assert run.load_of("a") == 4
        with pytest.raises(KeyError):
            run.load_of("zz")

    def test_summary_mentions_costs(self):
        run = RunStats(2)
        run.rounds.append(RoundStats("a", [3, 1]))
        assert "L=3" in run.summary() and "r=1" in run.summary()


class TestCombineParallel:
    def test_parallel_subclusters(self):
        a = RunStats(2)
        a.rounds.append(RoundStats("x", [5, 1]))
        b = RunStats(3)
        b.rounds.append(RoundStats("y", [2, 2, 2]))
        b.rounds.append(RoundStats("y2", [1, 1, 1]))
        combined = combine_parallel(5, [a, b])
        assert combined.num_rounds == 2
        assert combined.max_load == 5
        assert combined.rounds[0].total == 6 + 6
        assert combined.rounds[1].total == 3

    def test_empty(self):
        combined = combine_parallel(4, [])
        assert combined.num_rounds == 0

    def test_labels_deduplicated(self):
        a = RunStats(1)
        a.rounds.append(RoundStats("shuffle", [1]))
        b = RunStats(1)
        b.rounds.append(RoundStats("shuffle", [2]))
        c = RunStats(1)
        c.rounds.append(RoundStats("probe", [3]))
        combined = combine_parallel(3, [a, b, c])
        assert combined.rounds[0].label == "shuffle+probe"

    def test_undelivered_subrounds_excluded(self):
        """Cap-rejected sub-rounds moved nothing and must not misalign."""
        a = RunStats(2)
        a.rounds.append(RoundStats("bad", [9, 0], delivered=False))
        a.rounds.append(RoundStats("good", [1, 1]))
        b = RunStats(2)
        b.rounds.append(RoundStats("other", [2, 2]))
        combined = combine_parallel(4, [a, b])
        assert combined.num_rounds == 1
        assert combined.rounds[0].label == "good+other"
        assert combined.max_load == 2
        assert combined.total_communication == 6

    def test_aborted_counts_summed(self):
        a = RunStats(2, aborted=2)
        b = RunStats(2, aborted=1)
        assert combine_parallel(4, [a, b]).aborted == 3


class TestCombineSequential:
    def test_rounds_concatenate(self):
        a = RunStats(4)
        a.rounds.append(RoundStats("x", [5, 1, 0, 0]))
        b = RunStats(4)
        b.rounds.append(RoundStats("y", [2, 2, 2, 2]))
        combined = combine_sequential(4, [a, b])
        assert combined.num_rounds == 2
        assert combined.max_load == 5
        assert combined.total_communication == 6 + 8

    def test_aborted_counts_summed(self):
        a = RunStats(4, aborted=1)
        b = RunStats(4, aborted=2)
        assert combine_sequential(4, [a, b]).aborted == 3

    def test_undelivered_rounds_stay_inspectable(self):
        a = RunStats(2)
        a.rounds.append(RoundStats("bad", [9, 0], delivered=False))
        b = RunStats(2)
        b.rounds.append(RoundStats("ok", [1, 1]))
        combined = combine_sequential(2, [a, b])
        assert len(combined.rounds) == 2
        assert combined.num_rounds == 1
        assert combined.max_load == 1


class TestFreeRoundAccounting:
    def test_free_round_records_zero_loads(self):
        c = Cluster(3)
        with c.free_round("place") as rnd:
            for sid in range(3):
                rnd.send(sid, "A", (sid,))
        assert c.stats.rounds[0].received == [0, 0, 0]
        assert c.stats.rounds[0].delivered

    def test_free_round_not_counted_as_round(self):
        c = Cluster(2)
        with c.free_round("place") as rnd:
            rnd.send(0, "A", (1,))
        with c.round("work") as rnd:
            rnd.send(1, "A", (2,))
        assert c.stats.num_rounds == 1
        assert c.stats.max_load == 1
        assert c.stats.total_communication == 1

    def test_free_round_custom_units_uncharged(self):
        c = Cluster(2)
        with c.free_round("place") as rnd:
            rnd.send(0, "A", (1, 2, 3), units=3)
        assert c.stats.max_load == 0
        assert c.servers[0].get("A") == [(1, 2, 3)]


class TestHashFunctionAccess:
    def test_default_buckets_is_p(self):
        c = Cluster(7)
        h = c.hash_function(0)
        assert all(0 <= h(v) < 7 for v in range(100))

    def test_same_seed_same_functions(self):
        c1, c2 = Cluster(5, seed=11), Cluster(5, seed=11)
        h1, h2 = c1.hash_function(3), c2.hash_function(3)
        assert [h1(v) for v in range(50)] == [h2(v) for v in range(50)]


class TestLoadCapBoundary:
    """load_cap is the *maximum permitted* load: exactly-cap delivers,
    cap+1 raises — on the tuple path and the batched (kernel) path alike."""

    @pytest.mark.parametrize("kernels", [True, False])
    def test_exactly_cap_delivers(self, kernels):
        from repro.kernels.config import use_kernels

        with use_kernels(kernels):
            c = Cluster(2, load_cap=3)
            with c.round("r") as rnd:
                rnd.send_rows(0, "A", [(1,), (2,), (3,)])
            assert c.servers[0].get("A") == [(1,), (2,), (3,)]
            assert c.stats.max_load == 3
            assert c.stats.rounds[0].delivered

    @pytest.mark.parametrize("kernels", [True, False])
    def test_cap_plus_one_raises(self, kernels):
        from repro.kernels.config import use_kernels

        with use_kernels(kernels):
            c = Cluster(2, load_cap=3)
            with pytest.raises(LoadExceededError) as exc_info:
                with c.round("r") as rnd:
                    rnd.send_rows(0, "A", [(1,), (2,), (3,), (4,)])
            assert exc_info.value.load == 4 and exc_info.value.cap == 3
            assert c.servers[0].get("A") == []
            assert not c.stats.rounds[0].delivered

    def test_negative_units_rejected(self):
        """Regression: send(units=-5) silently offset other senders' units
        and could mask a cap violation (received=[-2, 0] from 4 sends)."""
        c = Cluster(2, load_cap=2)
        with pytest.raises(ClusterError, match="non-negative"):
            with c.round("r") as rnd:
                rnd.send(0, "A", (1,), units=-5)

    def test_zero_units_still_allowed(self):
        c = Cluster(2)
        with c.round("r") as rnd:
            rnd.send(0, "A", (1,), units=0)
        assert c.stats.max_load == 0
        assert c.servers[0].get("A") == [(1,)]


class TestAbortedRoundStats:
    """An aborted round must leave stats and audit identical to never
    having opened it — including with the column side-car attached."""

    @pytest.mark.parametrize("kernels", [True, False])
    def test_abort_after_partial_sends_leaves_no_trace(self, kernels):
        import numpy as np

        from repro.kernels.config import use_kernels

        with use_kernels(kernels):
            c = Cluster(2, audit=True)
            untouched = Cluster(2, audit=True)
            with pytest.raises(RuntimeError):
                with c.round("doomed") as rnd:
                    rnd.send(0, "A", (1,))
                    rnd.send_rows(
                        1, "B", [(2,), (3,)],
                        key_idx=(0,), columns=[np.array([2, 3])],
                    )
                    raise RuntimeError("algorithm bug")
            assert c.stats.rounds == untouched.stats.rounds
            assert c.stats.max_load == 0
            assert c.stats.total_communication == 0
            assert c.stats.aborted == 1
            report = c.stats.audit
            assert report.rounds_audited == 0
            assert report.checks_run == 0
            assert report.violations == []
            assert report.aborted_rounds == ["doomed"]
            # No fragment, no side-car anywhere.
            for server in c.servers:
                assert server.storage == {}
                assert server.column_cache == {}

    @pytest.mark.parametrize("kernels", [True, False])
    def test_side_car_installs_correctly_after_abort(self, kernels):
        """A later round to the same fragment behaves as if the aborted
        round never existed (fresh fragment, valid side-car)."""
        import numpy as np

        from repro.kernels.config import use_kernels

        with use_kernels(kernels):
            c = Cluster(2, audit=True)
            with pytest.raises(RuntimeError):
                with c.round("doomed") as rnd:
                    rnd.send_rows(
                        0, "B", [(9,)], key_idx=(0,), columns=[np.array([9])]
                    )
                    raise RuntimeError
            with c.round("ok") as rnd:
                rnd.send_rows(
                    0, "B", [(2,), (3,)],
                    key_idx=(0,), columns=[np.array([2, 3])],
                )
            rows, cols = c.servers[0].take_with_columns("B", (0,))
            assert rows == [(2,), (3,)]
            assert cols is not None and list(cols[0]) == [2, 3]
            assert c.stats.max_load == 2


class TestLoadOfDeliveredOnly:
    def test_load_of_excludes_cap_rejected_rounds(self):
        """Regression: load_of() used to report the attempted load of a
        cap-rejected round as if the algorithm had realized it."""
        c = Cluster(2, load_cap=2)
        with c.round("shuffle") as rnd:
            rnd.send(0, "A", (1,))
        with pytest.raises(LoadExceededError):
            with c.round("shuffle") as rnd:
                for _ in range(5):
                    rnd.send(0, "A", (0,))
        assert c.stats.load_of("shuffle") == 1

    def test_load_of_only_rejected_rounds_raises(self):
        c = Cluster(2, load_cap=2)
        with pytest.raises(LoadExceededError):
            with c.round("over") as rnd:
                for _ in range(5):
                    rnd.send(0, "A", (0,))
        with pytest.raises(KeyError):
            c.stats.load_of("over")
