"""Tests for the seeded hash family."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.mpc.hashing import HashFamily, HashFunction, splitmix64


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_stays_64_bit(self):
        assert 0 <= splitmix64(2**64 - 1) < 2**64

    @given(st.integers(0, 2**64 - 1))
    def test_range_property(self, x):
        assert 0 <= splitmix64(x) < 2**64


class TestHashFunction:
    def test_range(self):
        h = HashFamily(0).function(0, 16)
        assert all(0 <= h(v) < 16 for v in range(1000))

    def test_deterministic_across_instances(self):
        h1 = HashFamily(9).function(2, 8)
        h2 = HashFamily(9).function(2, 8)
        assert [h1(v) for v in range(100)] == [h2(v) for v in range(100)]

    def test_indices_give_distinct_functions(self):
        fam = HashFamily(0)
        h0, h1 = fam.function(0, 64), fam.function(1, 64)
        assert [h0(v) for v in range(200)] != [h1(v) for v in range(200)]

    def test_seeds_give_distinct_functions(self):
        h0 = HashFamily(0).function(0, 64)
        h1 = HashFamily(1).function(0, 64)
        assert [h0(v) for v in range(200)] != [h1(v) for v in range(200)]

    def test_roughly_uniform(self):
        h = HashFamily(3).function(0, 10)
        counts = Counter(h(v) for v in range(10_000))
        assert len(counts) == 10
        assert max(counts.values()) < 2 * 10_000 / 10

    def test_non_integer_values(self):
        h = HashFamily(0).function(0, 8)
        assert 0 <= h("hello") < 8
        assert h(("a", 1)) == h(("a", 1))

    def test_bool_hashes_like_int(self):
        h = HashFamily(0).function(0, 8)
        assert h(True) == h(1)

    def test_negative_integers(self):
        h = HashFamily(0).function(0, 8)
        assert 0 <= h(-12345) < 8

    def test_invalid_buckets(self):
        import pytest

        with pytest.raises(ValueError):
            HashFunction(0, salt=1)


class TestIndexValidation:
    """Regression: the (index + 1) salt masked to 64 bits aliased
    index=-1 with seed-only hashing and index i with i + 2**64."""

    def test_negative_index_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="index"):
            HashFamily(7).function(-1, 64)

    def test_huge_index_rejected(self):
        import pytest

        # 2**64 - 1 produced the same salt as index -1 before the fix.
        with pytest.raises(ValueError, match="index"):
            HashFamily(7).function(2**64 - 1, 64)
        with pytest.raises(ValueError, match="index"):
            HashFamily(7).function(2**64, 64)

    def test_largest_valid_index_accepted(self):
        h = HashFamily(7).function(2**64 - 2, 64)
        assert 0 <= h(123) < 64

    def test_distinct_indices_give_distinct_functions(self):
        """Golden: across a window of indices no two functions agree on a
        probe vector (independence across indices, per HyperCube)."""
        fam = HashFamily(seed=7)
        probes = list(range(32))
        seen = {}
        for index in (0, 1, 2, 3, 17, 255, 2**32, 2**64 - 2):
            signature = tuple(fam.function(index, 1 << 30)(v) for v in probes)
            assert signature not in seen.values(), f"index {index} collides"
            seen[index] = signature

    def test_valid_index_salts_unchanged(self):
        """The fix must not move any existing destination: the salt of a
        valid index is still splitmix64(splitmix64(seed) ^ (index + 1))."""
        from repro.mpc.hashing import splitmix64

        fam = HashFamily(seed=11)
        for index in (0, 1, 5):
            expected = splitmix64(splitmix64(11) ^ (index + 1))
            assert fam.function(index, 64).salt == expected
