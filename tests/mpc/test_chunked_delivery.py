"""Zero-copy chunked delivery must be observationally invisible.

When memoization is on, a round whose batched sends carried column
side-cars delivers the blocks as-is (``Server.put_column_chunks``)
instead of eagerly concatenating them; the concat is deferred to the
first whole-column consumer. These tests prove the deferral changes
nothing an observer can see: delivered rows, materialized columns,
``load_of()`` per round, and the conservation audit are byte-identical
to the eager path.
"""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.kernels.memo import use_memo
from repro.mpc.audit import audited
from repro.mpc.cluster import Cluster
from repro.mpc.server import ChunkedColumns


def _multi_chunk_round(memo: bool, audit: bool = False):
    """Route two batches per destination so every side-car is multi-block.

    Returns (cluster, fragment loads) after the round delivered.
    """
    with use_memo(memo):
        cluster = Cluster(2, audit=audit)
        cols_a = [np.array([1, 3, 5], dtype=np.int64)]
        cols_b = [np.array([7, 9], dtype=np.int64)]
        with cluster.round("route") as rnd:
            rnd.send_rows(0, "out", [(1, 0), (3, 0), (5, 0)], (0,), cols_a)
            rnd.send_rows(0, "out", [(7, 1), (9, 1)], (0,), cols_b)
            rnd.send_rows(1, "out", [(2, 0), (4, 0)], (0,),
                          [np.array([2, 4], dtype=np.int64)])
            rnd.send_rows(1, "out", [(6, 1)], (0,),
                          [np.array([6], dtype=np.int64)])
        return cluster


class TestChunkedEqualsEager:
    def test_rows_columns_and_load_identical(self):
        lazy = _multi_chunk_round(memo=True)
        eager = _multi_chunk_round(memo=False)
        assert lazy.stats.load_of("route") == eager.stats.load_of("route")
        for lazy_server, eager_server in zip(lazy.servers, eager.servers):
            lazy_rows, lazy_cols = lazy_server.take_with_columns("out", (0,))
            eager_rows, eager_cols = eager_server.take_with_columns("out", (0,))
            assert lazy_rows == eager_rows
            assert lazy_cols is not None and eager_cols is not None
            for a, b in zip(lazy_cols, eager_cols):
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)

    def test_lazy_path_actually_defers_the_concat(self):
        # Server 0 received two blocks; with memo on the side-car must
        # still be chunked until a consumer asks for whole columns.
        lazy = _multi_chunk_round(memo=True)
        cached = lazy.servers[0].column_cache["out"]
        assert isinstance(cached[1], ChunkedColumns)
        eager = _multi_chunk_round(memo=False)
        cached = eager.servers[0].column_cache["out"]
        assert not isinstance(cached[1], ChunkedColumns)

    def test_round_stats_identical(self):
        lazy = _multi_chunk_round(memo=True)
        eager = _multi_chunk_round(memo=False)
        assert [
            (r.label, r.received, r.delivered) for r in lazy.stats.rounds
        ] == [
            (r.label, r.received, r.delivered) for r in eager.stats.rounds
        ]


class TestChunkedUnderAudit:
    def test_audit_passes_and_matches_eager(self):
        lazy = _multi_chunk_round(memo=True, audit=True)
        eager = _multi_chunk_round(memo=False, audit=True)
        for cluster in (lazy, eager):
            report = cluster.stats.audit
            assert report is not None and report.ok
            assert report.rounds_audited == 1
        assert lazy.stats.audit.checks_run == eager.stats.audit.checks_run

    def test_join_end_to_end_audited(self):
        # A real multi-send workload: the shuffle of a hash join delivers
        # multi-block side-cars. Output, per-round loads, and the audit
        # must be identical with and without the lazy delivery.
        from repro.joins.hash_join import parallel_hash_join

        r = Relation("R", ["x", "y"], [(i % 11, i) for i in range(300)])
        s = Relation("S", ["x", "z"], [(i % 11, -i) for i in range(300)])
        runs = {}
        for memo in (True, False):
            with use_memo(memo), audited():
                runs[memo] = parallel_hash_join(r, s, p=4, seed=0)
        lazy, eager = runs[True], runs[False]
        assert lazy.output.rows_readonly() == eager.output.rows_readonly()
        assert [
            (rd.label, rd.received) for rd in lazy.stats.rounds
        ] == [
            (rd.label, rd.received) for rd in eager.stats.rounds
        ]
        for run in (lazy, eager):
            assert run.stats.audit is not None and run.stats.audit.ok


class TestChunkedColumnsUnit:
    def test_length_without_concat(self):
        blocks = [[np.array([1, 2]), np.array([3])]]
        cc = ChunkedColumns(blocks)
        assert cc.length == 3
        assert np.array_equal(cc.arrays()[0], np.array([1, 2, 3]))

    def test_empty(self):
        assert ChunkedColumns([]).length == 0

    def test_stale_chunked_sidecar_rejected(self):
        # take_with_columns must refuse a chunked side-car whose length no
        # longer matches the (externally grown) row list.
        cluster = _multi_chunk_round(memo=True)
        server = cluster.servers[0]
        server.fragment("out").append((99, 99))
        rows, cols = server.take_with_columns("out", (0,))
        assert rows[-1] == (99, 99)
        assert cols is None
