"""Tests for the execution trace rendering."""

from repro.mpc.cluster import Cluster
from repro.mpc.stats import RoundStats, RunStats
from repro.mpc.trace import busiest_server, load_histogram, round_table, trace


def sample_stats():
    stats = RunStats(3)
    stats.rounds.append(RoundStats("shuffle", [10, 4, 2]))
    stats.rounds.append(RoundStats("join", [0, 6, 6]))
    return stats


class TestRoundTable:
    def test_contains_rows_and_totals(self):
        text = round_table(sample_stats())
        assert "shuffle" in text and "join" in text
        assert "TOTAL" in text
        assert "r=2" in text

    def test_empty_run(self):
        text = round_table(RunStats(2))
        assert "TOTAL" in text and "r=0" in text

    def test_long_labels_truncated_and_aligned(self):
        stats = RunStats(2)
        stats.rounds.append(
            RoundStats("a-very-long-round-label-that-overflows-the-column", [3, 1])
        )
        stats.rounds.append(RoundStats("short", [1, 1]))
        text = round_table(stats)
        header, long_row, short_row, total = text.splitlines()
        # Every row keeps the same column positions despite the long label.
        assert len(long_row) == len(short_row) == len(header)
        assert "…" in long_row
        assert "a-very-long-round-label-that" not in text  # actually truncated

    def test_undelivered_round_flagged(self):
        stats = RunStats(2)
        stats.rounds.append(RoundStats("over-cap", [9, 0], delivered=False))
        text = round_table(stats)
        assert "over-cap !" in text
        assert "r=0" in text  # undelivered rounds don't count


class TestHistogram:
    def test_bars_scale_with_load(self):
        text = load_histogram(RoundStats("x", [10, 5, 0]))
        lines = text.splitlines()[1:]
        assert lines[0].count("█") > lines[1].count("█")
        assert "█" not in lines[2] and "▌" not in lines[2]

    def test_uses_block_chars_not_hash(self):
        text = load_histogram(RoundStats("x", [10, 5, 0]))
        assert "#" not in text

    def test_half_block_for_fractional_remainder(self):
        # Peak 16 at width 24: load 11 scales to 16.5 -> 16 full + a half.
        text = load_histogram(RoundStats("x", [16, 11, 10]))
        lines = text.splitlines()[1:]
        assert lines[0].count("█") == 24 and "▌" not in lines[0]
        assert lines[1].count("█") == 16 and lines[1].count("▌") == 1
        # Load 10 scales to 15.0 exactly: no half block.
        assert lines[2].count("█") == 15 and "▌" not in lines[2]

    def test_tiny_nonzero_load_gets_a_tick(self):
        text = load_histogram(RoundStats("x", [1000, 1]))
        lines = text.splitlines()[1:]
        assert "▏" in lines[1]

    def test_shows_values(self):
        text = load_histogram(RoundStats("x", [7]))
        assert "7" in text and "s00" in text


class TestTrace:
    def test_without_histograms(self):
        text = trace(sample_stats())
        assert "server loads" not in text

    def test_with_histograms_skips_silent_rounds(self):
        stats = sample_stats()
        stats.rounds.append(RoundStats("quiet", [0, 0, 0]))
        text = trace(stats, histograms=True)
        assert text.count("server loads") == 2

    def test_histograms_skip_undelivered_rounds(self):
        stats = sample_stats()
        stats.rounds.append(RoundStats("rejected", [99, 0, 0], delivered=False))
        text = trace(stats, histograms=True)
        assert text.count("server loads") == 2

    def test_audited_run_appends_summary(self):
        cluster = Cluster(2, audit=True)
        with cluster.round("r") as rnd:
            rnd.send(0, "A", (1,))
        text = trace(cluster.stats)
        assert "audit:" in text and "0 violations" in text

    def test_real_run_traces(self):
        from repro.data.generators import uniform_relation
        from repro.joins import parallel_hash_join

        r = uniform_relation("R", ["x", "y"], 100, 30, seed=1)
        s = uniform_relation("S", ["y", "z"], 100, 30, seed=2)
        run = parallel_hash_join(r, s, p=4)
        text = trace(run.stats, histograms=True)
        assert "hash-shuffle" in text


class TestBusiestServer:
    def test_identifies_hotspot(self):
        # Totals: s0 = 10, s1 = 10, s2 = 8; ties resolve to the lower id.
        sid, total = busiest_server(sample_stats())
        assert (sid, total) == (0, 10)

    def test_unambiguous_hotspot(self):
        stats = RunStats(2)
        stats.rounds.append(RoundStats("a", [1, 9]))
        assert busiest_server(stats) == (1, 9)

    def test_ignores_undelivered_rounds(self):
        stats = RunStats(2)
        stats.rounds.append(RoundStats("a", [1, 2]))
        stats.rounds.append(RoundStats("b", [50, 0], delivered=False))
        assert busiest_server(stats) == (1, 2)

    def test_empty(self):
        assert busiest_server(RunStats(4)) == (0, 0)
