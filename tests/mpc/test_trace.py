"""Tests for the execution trace rendering."""

from repro.mpc.stats import RoundStats, RunStats
from repro.mpc.trace import busiest_server, load_histogram, round_table, trace


def sample_stats():
    stats = RunStats(3)
    stats.rounds.append(RoundStats("shuffle", [10, 4, 2]))
    stats.rounds.append(RoundStats("join", [0, 6, 6]))
    return stats


class TestRoundTable:
    def test_contains_rows_and_totals(self):
        text = round_table(sample_stats())
        assert "shuffle" in text and "join" in text
        assert "TOTAL" in text
        assert "r=2" in text

    def test_empty_run(self):
        text = round_table(RunStats(2))
        assert "TOTAL" in text and "r=0" in text


class TestHistogram:
    def test_bars_scale_with_load(self):
        text = load_histogram(RoundStats("x", [10, 5, 0]))
        lines = text.splitlines()[1:]
        assert lines[0].count("#") > lines[1].count("#")
        assert "#" not in lines[2]

    def test_shows_values(self):
        text = load_histogram(RoundStats("x", [7]))
        assert "7" in text and "s00" in text


class TestTrace:
    def test_without_histograms(self):
        text = trace(sample_stats())
        assert "server loads" not in text

    def test_with_histograms_skips_silent_rounds(self):
        stats = sample_stats()
        stats.rounds.append(RoundStats("quiet", [0, 0, 0]))
        text = trace(stats, histograms=True)
        assert text.count("server loads") == 2

    def test_real_run_traces(self):
        from repro.data.generators import uniform_relation
        from repro.joins import parallel_hash_join

        r = uniform_relation("R", ["x", "y"], 100, 30, seed=1)
        s = uniform_relation("S", ["y", "z"], 100, 30, seed=2)
        run = parallel_hash_join(r, s, p=4)
        text = trace(run.stats, histograms=True)
        assert "hash-shuffle" in text


class TestBusiestServer:
    def test_identifies_hotspot(self):
        # Totals: s0 = 10, s1 = 10, s2 = 8; ties resolve to the lower id.
        sid, total = busiest_server(sample_stats())
        assert (sid, total) == (0, 10)

    def test_unambiguous_hotspot(self):
        stats = RunStats(2)
        stats.rounds.append(RoundStats("a", [1, 9]))
        assert busiest_server(stats) == (1, 9)

    def test_empty(self):
        assert busiest_server(RunStats(4)) == (0, 0)
