"""Regression: ``Cluster.gather()`` must return a fresh copy, never a
live server storage list.

``Server.get()`` hands out the live list (documented, for the hot
paths); ``gather()`` is the boundary where rows leave the simulator, so
its contract is the opposite — callers may mutate the result freely.
The dangerous configuration is a single server (p=1) or a fragment that
lives on one server only, where a naive implementation could return the
storage list itself. Mirrors the ``Relation.rows()`` footgun suite: the
storage lists are swapped for a guard that raises on any mutation, and
the gathered result is then mutated every way a caller plausibly would.
"""

import pytest

from repro.mpc.cluster import Cluster


class MutationError(AssertionError):
    pass


def _forbid(name):
    def method(self, *args, **kwargs):
        raise MutationError(f"server storage mutated via {name}()")

    method.__name__ = name
    return method


class GuardedList(list):
    """A list whose every mutating method raises :class:`MutationError`."""


for _name in (
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "__setitem__", "__delitem__", "__iadd__", "__imul__",
):
    setattr(GuardedList, _name, _forbid(_name))


def _guard_storage(cluster, fragment):
    """Replace every server's backing list for ``fragment`` with a guard."""
    for server in cluster.servers:
        if fragment in server.storage:
            server.storage[fragment] = GuardedList(server.storage[fragment])


def _abuse(rows):
    """Every mutation a result consumer plausibly performs."""
    rows.sort()
    rows.reverse()
    rows.append(("sentinel",))
    rows.extend([("more",), ("rows",)])
    rows[0] = ("overwritten",)
    del rows[0]
    rows.clear()


@pytest.mark.parametrize("p", [1, 2, 5])
def test_gather_returns_mutable_copy(p):
    cluster = Cluster(p, seed=0)
    rows = [(i, i * i) for i in range(40)]
    cluster.scatter_rows(rows, "R")
    _guard_storage(cluster, "R")

    gathered = cluster.gather("R")
    assert sorted(gathered) == sorted(rows)
    _abuse(gathered)  # raises MutationError if gather leaked live storage

    # The fragments themselves are untouched by all of the above.
    assert sorted(cluster.gather("R")) == sorted(rows)


def test_gather_single_owner_fragment():
    """All rows on one server — the classic alias-return configuration."""
    cluster = Cluster(4, seed=0)
    rows = [(i,) for i in range(25)]
    cluster.servers[2].put("only", list(rows))
    _guard_storage(cluster, "only")

    gathered = cluster.gather("only")
    assert gathered == rows
    assert gathered is not cluster.servers[2].storage["only"]
    _abuse(gathered)
    assert cluster.gather("only") == rows


def test_gather_relation_rows_are_detached():
    cluster = Cluster(3, seed=1)
    rows = [(i, -i) for i in range(30)]
    cluster.scatter_rows(rows, "R")
    _guard_storage(cluster, "R")

    rel = cluster.gather_relation("R", "R", ("a", "b"))
    _abuse(rel.rows())  # Relation adopts the gathered copy, not storage
    assert sorted(cluster.gather("R")) == sorted(rows)


def test_gather_empty_fragment_is_fresh():
    cluster = Cluster(2, seed=0)
    first = cluster.gather("missing")
    first.append(("junk",))
    assert cluster.gather("missing") == []
