"""Golden-output tests for :mod:`repro.mpc.trace`.

The trace renderer is a debugging surface: its exact layout (column
widths, block characters, the ``!`` undelivered flag, the TOTAL row) is
part of the contract. These tests pin the rendered text verbatim so an
accidental formatting change shows up as a readable diff.
"""

from __future__ import annotations

from repro.mpc.cluster import Cluster
from repro.mpc.stats import RoundStats, RunStats
from repro.mpc.trace import busiest_server, load_histogram, round_table, trace


def _stats() -> RunStats:
    stats = RunStats(4)
    stats.rounds = [
        RoundStats("shuffle", [10, 6, 0, 4]),
        RoundStats(
            "a-very-long-label-that-overflows-the-column",
            [3, 3, 3, 3],
            delivered=False,
        ),
        RoundStats("broadcast", [5, 5, 5, 5]),
    ]
    return stats


GOLDEN_TABLE = "\n".join([
    "round                           L      total  imbalance",
    "shuffle                        10         20       2.00",
    "a-very-long-label-tha… !        3         12       1.00",
    "broadcast                       5         20       1.00",
    "TOTAL                          10         40        r=2",
])

GOLDEN_HISTOGRAM = "\n".join([
    "server loads [shuffle]",
    "  s00 ████████████████████████ 10",
    "  s01 ██████████████           6",
    "  s02                          0",
    "  s03 █████████▌               4",
])


def test_round_table_golden():
    assert round_table(_stats()) == GOLDEN_TABLE


def test_round_table_flags_undelivered_and_truncates():
    table = round_table(_stats())
    # The ! flag survives truncation of an over-long label ...
    assert "a-very-long-label-tha… !" in table
    # ... and the undelivered round is excluded from the TOTAL row.
    assert "r=2" in table


def test_load_histogram_golden():
    assert load_histogram(_stats().rounds[0]) == GOLDEN_HISTOGRAM


def test_load_histogram_half_block():
    golden = "\n".join([
        "server loads [half]",
        "  s00 ████████████████████████ 16",
        "  s01 █████████████▌           9",
    ])
    assert load_histogram(RoundStats("half", [16, 9])) == golden


def test_load_histogram_minimum_tick():
    golden = "\n".join([
        "server loads [tick]",
        "  s00 ████████████████████████ 100",
        "  s01 ▏                        1",
    ])
    assert load_histogram(RoundStats("tick", [100, 1])) == golden


def test_trace_combines_table_and_histograms():
    text = trace(_stats(), histograms=True)
    assert text.startswith(GOLDEN_TABLE)
    # Delivered rounds get a histogram; the undelivered one is skipped.
    assert text.count("server loads [") == 2
    assert "server loads [a-very-long-label" not in text


def test_trace_appends_audit_summary():
    cluster = Cluster(2, audit=True)
    with cluster.round("r1") as rt:
        rt.send(0, "frag", ("t",))
        rt.send(1, "frag", ("u",))
    text = trace(cluster.stats)
    assert cluster.stats.audit is not None
    assert text.rstrip().endswith(cluster.stats.audit.summary())


def test_busiest_server_ignores_undelivered():
    sid, total = busiest_server(_stats())
    assert (sid, total) == (0, 15)


def test_busiest_server_empty_run():
    assert busiest_server(RunStats(3)) == (0, 0)
