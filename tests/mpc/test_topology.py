"""Tests for grid addressing (HyperCube coordinates)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ClusterError
from repro.mpc.topology import Grid


class TestGridBasics:
    def test_size(self):
        assert Grid([2, 3, 4]).size == 24

    def test_flat_roundtrip(self):
        g = Grid([2, 3, 4])
        for flat in range(g.size):
            assert g.flat(g.coordinate(flat)) == flat

    def test_flat_ids_cover_range(self):
        g = Grid([3, 3])
        ids = {g.flat((i, j)) for i in range(3) for j in range(3)}
        assert ids == set(range(9))

    def test_one_dimension(self):
        g = Grid([5])
        assert g.coordinate(3) == (3,)

    def test_invalid_extents(self):
        with pytest.raises(ClusterError):
            Grid([])
        with pytest.raises(ClusterError):
            Grid([2, 0])

    def test_out_of_range_coordinate(self):
        with pytest.raises(ClusterError):
            Grid([2, 2]).flat((2, 0))

    def test_wrong_arity_coordinate(self):
        with pytest.raises(ClusterError):
            Grid([2, 2]).flat((1,))

    def test_out_of_range_flat(self):
        with pytest.raises(ClusterError):
            Grid([2, 2]).coordinate(4)


class TestMatching:
    def test_fully_bound(self):
        g = Grid([2, 3])
        assert list(g.matching((1, 2))) == [g.flat((1, 2))]

    def test_one_wildcard(self):
        g = Grid([2, 3])
        ids = list(g.matching((None, 1)))
        assert ids == [g.flat((0, 1)), g.flat((1, 1))]

    def test_all_wildcards(self):
        g = Grid([2, 2])
        assert sorted(g.matching((None, None))) == [0, 1, 2, 3]

    def test_triangle_replication_counts(self):
        # HyperCube triangle: R fixes (x, y), wildcard on z — each R tuple
        # is replicated to p^(1/3) servers in a cube grid.
        g = Grid([4, 4, 4])
        assert len(list(g.matching((2, 1, None)))) == 4
        assert len(list(g.matching((2, None, None)))) == 16

    def test_wrong_arity_partial(self):
        with pytest.raises(ClusterError):
            list(Grid([2, 2]).matching((None,)))

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=4))
    def test_wildcard_count_property(self, extents):
        """Replication factor = product of wildcarded extents."""
        g = Grid(extents)
        partial = [None] * len(extents)
        assert len(list(g.matching(partial))) == math.prod(extents)
