"""Regression tests for Engine thread-safety (the _align LRU race).

Before the ``_align_lock`` fix, two threads hitting the same cache key
raced between ``get`` and the recency-bump ``pop``: both observed the
entry, both popped, and the second raised ``KeyError``. The regression
test reproduces that exact interleaving deterministically with a dict
subclass that parks inside ``get`` on a two-party barrier:

- **pre-fix**: both threads enter ``get`` concurrently, the barrier
  releases them together, both pop → ``KeyError`` every run;
- **post-fix**: the lock admits one thread at a time, its barrier wait
  times out (broken barrier, caught), and both queries finish cleanly.
"""

import threading

import pytest

from repro.data.relation import Relation
from repro.engine import Engine

QUERY = "Q(a, b, c) :- R(a, b), S(b, c)"


def make_engine():
    engine = Engine(4)
    engine.register(Relation("R", ["a", "b"], [(i, i % 5) for i in range(30)]))
    engine.register(Relation("S", ["b", "c"], [(i % 5, i) for i in range(20)]))
    return engine


class RendezvousDict(dict):
    """A dict whose ``pop`` parks callers on a barrier before popping.

    Reproduces the old unlocked hit path's get→pop race on demand: with
    two parties, the first rendezvous only releases once BOTH threads
    have observed the entry via ``get`` and committed to popping it,
    and the second holds the winner inside ``pop`` until the loser has
    popped too — so the loser always raises ``KeyError`` before the
    winner can reinsert. Under the fixed (locked) implementation only
    one thread can reach ``pop`` at a time, so its waits time out, the
    barrier breaks, and every later wait returns immediately — no such
    interleaving exists.
    """

    def __init__(self, *args, barrier=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.barrier = barrier

    def _rendezvous(self):
        if self.barrier is not None:
            try:
                self.barrier.wait(timeout=0.5)
            except threading.BrokenBarrierError:
                pass

    def pop(self, key, *args):
        self._rendezvous()                    # both committed to popping
        try:
            return super().pop(key, *args)
        finally:
            self._rendezvous()                # hold until both have popped


def test_align_cache_concurrent_hits_do_not_double_pop():
    """The pre-fix failing race: concurrent hits on one cached alignment."""
    engine = make_engine()
    engine.query(QUERY)                       # prime the alignment cache
    assert len(engine._align_cache) > 0

    barrier = threading.Barrier(2)
    engine._align_cache = RendezvousDict(engine._align_cache, barrier=barrier)
    errors = []

    def hit():
        try:
            engine.query(QUERY)
        except BaseException as exc:  # noqa: BLE001 - the assertion target
            errors.append(exc)

    threads = [threading.Thread(target=hit) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"concurrent cache hits raised: {errors!r}"
    assert engine._align_hits >= 2


def test_concurrent_queries_byte_identical():
    """N threads through one engine produce the serial answer, always."""
    engine = make_engine()
    expected = sorted(engine.query(QUERY).output.rows_readonly())
    outputs = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(4)

    def worker():
        try:
            barrier.wait(timeout=10)
            for _ in range(5):
                rows = sorted(engine.query(QUERY).output.rows_readonly())
                with lock:
                    outputs.append(rows)
        except BaseException as exc:  # noqa: BLE001
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(outputs) == 20
    assert all(rows == expected for rows in outputs)


def test_register_during_queries_is_safe():
    """register() clearing the cache mid-query storm never corrupts hits."""
    engine = make_engine()
    errors = []
    stop = threading.Event()

    def querier():
        try:
            while not stop.is_set():
                engine.query(QUERY)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def registrar():
        try:
            for i in range(50):
                engine.register(
                    Relation("S", ["b", "c"], [(j % 5, j) for j in range(20)])
                )
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            stop.set()

    threads = [threading.Thread(target=querier) for _ in range(2)]
    threads.append(threading.Thread(target=registrar))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
