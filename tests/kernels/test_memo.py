"""The intra-query memoization layer (:mod:`repro.kernels.memo`).

Three contracts under test:

- the **gate**: ``REPRO_MEMO`` / ``use_memo`` control whether anything
  is ever cached, and memo-off leaves the caches untouched;
- the **partition cache**: replaying a cached routing plan is
  byte-identical to the per-server ``try_route`` loop, hits/misses are
  counted, and any mutation of the relation (including through a
  borrowed ``rows()`` list) invalidates — proven both on directed cases
  and under hypothesis-driven mutate/route interleavings in both kernel
  modes, mirroring the PR 6 coherency suite;
- the **view cache**: derived views are shared on hit and rebuilt after
  mutation, and multi-round entry points actually engage the layer.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.kernels.config import use_kernels
from repro.kernels.memo import (
    MemoStats,
    clear_memo,
    distinct_project,
    key_degrees,
    memo_cache_sizes,
    memo_enabled,
    project_view,
    route_scattered,
    use_memo,
)
from repro.kernels.partition import try_route
from repro.mpc.cluster import Cluster

ARITY = 2

values = st.integers(min_value=-(2**40), max_value=2**40)
rows_st = st.tuples(*[values] * ARITY)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _relation(n=40, stride=3):
    return Relation("R", ["x", "y"], [(i * stride, i) for i in range(n)])


def _route(rel, p=4, seed=0, memo=True):
    """Scatter ``rel`` into a fresh cluster and hash-route it on column 0.

    Mirrors the shuffle loops in ``joins``/``multiway``: memo replay
    first, then the columnar ``try_route`` per server, then the plain
    per-row sends. Returns (per-server deliveries, stats).
    """
    with use_memo(memo):
        cluster = Cluster(p, seed=seed)
        frag = cluster.scatter(rel, "R@in")
        h = cluster.hash_function(0)
        with cluster.round("route") as rnd:
            if not route_scattered(cluster, rnd, rel, frag, (0,), h, "out"):
                for server in cluster.servers:
                    rows, cols = server.take_with_columns(frag, (0,))
                    if not try_route(rnd, rows, (0,), h, "out", columns=cols):
                        for row in rows:
                            rnd.send(h((row[0],)), "out", row)
        deliveries = [list(server.get("out")) for server in cluster.servers]
        return deliveries, cluster.stats


# ------------------------------------------------------------------- gate


def test_memo_enabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_MEMO", raising=False)
    assert memo_enabled()


def test_use_memo_forces_and_restores(monkeypatch):
    monkeypatch.delenv("REPRO_MEMO", raising=False)
    with use_memo(False):
        assert not memo_enabled()
        with use_memo(True):
            assert memo_enabled()
        assert not memo_enabled()
    assert memo_enabled()


def test_use_memo_none_is_a_no_op():
    with use_memo(False):
        with use_memo(None):
            assert not memo_enabled()


def test_env_disables(monkeypatch):
    monkeypatch.setenv("REPRO_MEMO", "off")
    assert not memo_enabled()
    with use_memo(True):  # explicit forcing beats the environment
        assert memo_enabled()


def test_memo_off_caches_nothing():
    rel = _relation()
    _route(rel, memo=False)
    _route(rel, memo=False)
    assert memo_cache_sizes() == (0, 0)


# -------------------------------------------------------- partition cache


def test_replay_is_byte_identical_and_counted():
    rel = _relation()
    reference, ref_stats = _route(rel, memo=False)
    first, first_stats = _route(rel, memo=True)
    again, again_stats = _route(rel, memo=True)
    assert first == reference
    assert again == reference
    assert first_stats.max_load == ref_stats.max_load
    assert again_stats.max_load == ref_stats.max_load
    assert first_stats.memo.partition_misses == 1
    assert first_stats.memo.partition_hits == 0
    assert again_stats.memo.partition_hits == 1
    assert again_stats.memo.hash_ops_saved > 0
    assert again_stats.memo.bytes_saved > 0


def test_mutation_invalidates_the_plan():
    rel = _relation()
    _route(rel, memo=True)
    rel.add((999_983, -1))
    got, stats = _route(rel, memo=True)
    want, _ = _route(Relation("R", ["x", "y"], rel.rows_readonly()), memo=False)
    assert got == want
    assert stats.memo.partition_hits == 0
    assert stats.memo.partition_misses == 1


def test_borrowed_relation_is_never_served():
    rel = _relation()
    _route(rel, memo=True)
    live = rel.rows()  # borrow: external edits are now possible
    live[0] = (123_456_789, 0)
    got, stats = _route(rel, memo=True)
    want, _ = _route(Relation("R", ["x", "y"], list(live)), memo=False)
    assert got == want
    assert stats.memo.partition_hits == 0


def test_kernels_off_falls_back_identically():
    rel = _relation()
    reference, _ = _route(rel, memo=False)
    with use_kernels(False):
        got, stats = _route(rel, memo=True)
    assert got == reference
    assert stats.memo.partition_hits + stats.memo.partition_misses == 0


def test_tampered_fragment_falls_back():
    # A fragment that no longer matches its scatter provenance must not
    # replay a stale plan.
    rel = _relation()
    _route(rel, memo=True)  # prime the cache
    with use_memo(True):
        cluster = Cluster(4, seed=0)
        frag = cluster.scatter(rel, "R@in")
        cluster.servers[0].fragment(frag).append((7, 7))
        h = cluster.hash_function(0)
        with cluster.round("route") as rnd:
            assert not route_scattered(
                cluster, rnd, rel, frag, (0,), h, "out"
            )


operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), rows_st),
        st.tuples(st.just("extend"), st.lists(rows_st, max_size=3)),
        st.tuples(st.just("set_inplace"), st.integers(0, 7), rows_st),
        st.tuples(st.just("route"), st.integers(min_value=2, max_value=4)),
        st.tuples(st.just("route_twice"), st.integers(min_value=2, max_value=4)),
    ),
    max_size=10,
)


@pytest.mark.parametrize("kernels", [True, False])
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(initial=st.lists(rows_st, max_size=8), ops=operations)
def test_partition_cache_coherent_under_interleavings(kernels, initial, ops):
    """Mirror of the PR 6 coherency suite for the partition cache.

    Whatever interleaving of mutations (including through a borrowed
    live list) and routes the relation suffers, the memoized route must
    deliver exactly what a memo-off route of the same state delivers —
    and an immediate re-route (the hit path) must too.
    """
    clear_memo()
    with use_kernels(kernels):
        memoized = Relation("R", ["x", "y"], initial)
        shadow = list(initial)
        for op in ops:
            tag = op[0]
            if tag == "add":
                memoized.add(op[1])
                shadow.append(op[1])
            elif tag == "extend":
                memoized.extend(op[1])
                shadow.extend(op[1])
            elif tag == "set_inplace":
                live = memoized.rows()
                if live:
                    live[op[1] % len(live)] = op[2]
                    shadow[op[1] % len(shadow)] = op[2]
            else:
                p = op[1]
                reference = Relation("R", ["x", "y"], shadow)
                want, want_stats = _route(reference, p=p, memo=False)
                got, got_stats = _route(memoized, p=p, memo=True)
                assert got == want
                assert got_stats.max_load == want_stats.max_load
                if tag == "route_twice":
                    again, _ = _route(memoized, p=p, memo=True)
                    assert again == want
    clear_memo()


# ------------------------------------------------------------- view cache


def test_project_view_shares_on_hit_and_rebuilds_on_mutation():
    rel = _relation()
    stats = MemoStats()
    with use_memo(True):
        first = project_view(rel, ("x",), stats=stats)
        second = project_view(rel, ("x",), stats=stats)
        assert second is first
        assert (stats.view_hits, stats.view_misses) == (1, 1)
        rel.add((-5, -5))
        third = project_view(rel, ("x",), stats=stats)
    assert third is not first
    assert third.rows_readonly() == rel.project(["x"]).rows_readonly()


def test_distinct_and_degrees_match_reference():
    rel = Relation("R", ["x", "y"], [(1, 2), (1, 3), (2, 2), (1, 2)])
    with use_memo(True):
        assert sorted(distinct_project(rel, ("x",)).rows_readonly()) == \
            [(1,), (2,)]
        assert key_degrees(rel, (0,)) == Counter({(1,): 3, (2,): 1})
        # The cached Counter is shared between calls.
        assert key_degrees(rel, (0,)) is key_degrees(rel, (0,))


def test_view_cache_bypassed_for_borrowed_relations():
    rel = _relation()
    rel.rows()  # borrow
    with use_memo(True):
        first = project_view(rel, ("x",))
        second = project_view(rel, ("x",))
    assert first is not second
    assert memo_cache_sizes() == (0, 0)


# ------------------------------------------- multi-round engagement + stats


def test_multiround_entry_point_hits_the_cache():
    # A cold GYM run populates the caches; repeating the query on the
    # same unchanged relations (every round of a service loop, every
    # branch of the splitter) must replay instead of re-hashing — and
    # stay byte-identical to a memo-off run throughout.
    from repro.multiway.gym import gym
    from repro.query.parser import parse_query

    query = parse_query("Q(a, b, c) :- R(a, b), S(b, c)")
    relations = {
        "R": Relation("R", ["a", "b"], [(i % 7, i % 5) for i in range(60)]),
        "S": Relation("S", ["b", "c"], [(i % 5, i % 3) for i in range(60)]),
    }
    with use_memo(True):
        cold = gym(query, relations, p=4, seed=0)
        warm = gym(query, relations, p=4, seed=0)
    with use_memo(False):
        reference = gym(query, relations, p=4, seed=0)
    for run in (cold, warm):
        assert run.output.rows_readonly() == reference.output.rows_readonly()
        assert run.stats.max_load == reference.stats.max_load
    assert cold.stats.memo.partition_misses > 0
    assert warm.stats.memo.partition_hits > 0
    assert warm.stats.memo.view_hits > 0


def test_memo_stats_merge_snapshot_delta_summary():
    a = MemoStats(partition_hits=2, hash_ops=10, bytes_saved=100)
    b = MemoStats(partition_hits=1, view_misses=3)
    merged = MemoStats.merged([a, None, b])
    assert merged.partition_hits == 3
    assert merged.hash_ops == 10
    assert merged.view_misses == 3
    snap = merged.snapshot()
    merged.partition_hits += 5
    delta = merged.delta(snap)
    assert delta.partition_hits == 5
    assert delta.hash_ops == 0
    assert merged.any_activity
    assert not MemoStats().any_activity
    line = merged.summary()
    assert line.startswith("memo: partition")
    assert "bytes_saved=100" in line
