"""Cross-platform hash determinism: golden values on a fixed probe set.

The partitioning decisions of every algorithm flow through the seeded
hash family, so its values must be identical on every platform and
numpy version — these literals were recorded once and must never change.
The vectorized kernels are additionally required to reproduce the scalar
spec bit for bit, which guards numpy uint64 overflow/wraparound
semantics (a silent change there would desynchronize the two paths).
"""

import numpy as np

from repro.kernels.hashing import (
    as_uint64,
    bucket_tuple_columns,
    bucket_value_column,
    hash_tuple_columns,
    hash_value_column,
    splitmix64_array,
)
from repro.mpc.hashing import HashFamily, hash_int_tuple, splitmix64

# Probes cover zero, small values, negatives (two's complement masking),
# both int64 boundaries, and a value above 2^32.
PROBES = [0, 1, 2, 63, -1, -2, 2**31, -(2**31), 2**63 - 1, -(2**63),
          123456789012345]

SPLITMIX_GOLDEN = {
    0: 16294208416658607535,
    1: 10451216379200822465,
    42: 13679457532755275413,
    2**63: 5196802822362493915,
    2**64 - 1: 16490336266968443936,
}

TUPLE1_GOLDEN = [
    2200387769397666411, 36397937854493696, 10257025646288132551,
    14156896446612662376, 2030061528465149588, 6399936856535743935,
    18082244978869442733, 3572157750631453468, 2697000919305593387,
    2165287577339522570, 6718157066155048431,
]

TUPLE2_GOLDEN = [
    8304893137230897003, 16059103150663140743, 15942668422071496277,
    6789797878093040582, 6125465908494042028, 5613286583370245527,
    5903912020491956816, 3212173838559737290, 11094856563563800197,
    12063534141335860702, 1271642995882689448,
]

# HashFamily(5).function(2, 64) — covers the family's salt derivation.
FUNCTION_SALT = 7485121835981390325
BUCKETS_INT_GOLDEN = [33, 40, 58, 23, 43, 12, 31, 27, 47, 59, 40]
# Non-integer values take the blake2b-of-repr fallback.
OTHER_PROBES = ["a", "xyzzy", 3.5, (1, "x"), None, b"bytes"]
BUCKETS_OTHER_GOLDEN = [45, 26, 46, 36, 61, 50]

MASK64 = 2**64 - 1


class TestScalarGolden:
    def test_splitmix64(self):
        for value, expected in SPLITMIX_GOLDEN.items():
            assert splitmix64(value) == expected

    def test_tuple_hash_arity_1(self):
        assert [hash_int_tuple((v,), 7) for v in PROBES] == TUPLE1_GOLDEN

    def test_tuple_hash_arity_2(self):
        assert [hash_int_tuple((v, -v), 11) for v in PROBES] == TUPLE2_GOLDEN

    def test_family_salt(self):
        assert HashFamily(5).function(2, 64).salt == FUNCTION_SALT

    def test_integer_buckets(self):
        h = HashFamily(5).function(2, 64)
        assert [h(v) for v in PROBES] == BUCKETS_INT_GOLDEN

    def test_blake2b_fallback_buckets(self):
        h = HashFamily(5).function(2, 64)
        assert [h(v) for v in OTHER_PROBES] == BUCKETS_OTHER_GOLDEN


class TestVectorizedBitEqual:
    """The numpy kernels must reproduce the scalar goldens bit for bit."""

    def test_splitmix64_array(self):
        values = np.array(sorted(SPLITMIX_GOLDEN), dtype=np.uint64)
        expected = [SPLITMIX_GOLDEN[int(v)] for v in values]
        assert splitmix64_array(values).tolist() == expected

    def test_as_uint64_two_complement(self):
        col = np.array(PROBES, dtype=np.int64)
        assert as_uint64(col).tolist() == [v & MASK64 for v in PROBES]

    def test_value_column_matches_scalar_chain(self):
        col = np.array(PROBES, dtype=np.int64)
        expected = [
            splitmix64((v & MASK64) ^ splitmix64(FUNCTION_SALT)) for v in PROBES
        ]
        assert hash_value_column(col, FUNCTION_SALT).tolist() == expected

    def test_tuple_columns_match_scalar_chain(self):
        # -(-2^63) overflows int64; the hash only sees v & MASK64, so the
        # second column carries the masked negations as uint64.
        cols = [np.array(PROBES, dtype=np.int64),
                np.array([(-v) & MASK64 for v in PROBES], dtype=np.uint64)]
        expected = [hash_int_tuple((v, -v), 11) for v in PROBES]
        assert hash_tuple_columns(cols, 11).tolist() == expected

    def test_bucket_kernels_match_golden(self):
        col = np.array(PROBES, dtype=np.int64)
        # Tuple keys carry the tuple tag: 1-tuples hash differently from
        # bare scalars, so each kernel pins against its own golden chain.
        assert bucket_tuple_columns([col], 7, 64).tolist() \
            == [g % 64 for g in TUPLE1_GOLDEN]
        assert bucket_value_column(col, FUNCTION_SALT, 64).tolist() \
            == BUCKETS_INT_GOLDEN

    def test_uint64_boundary_wraparound(self):
        # 2^63 and 2^64-1 exercise the multiply-overflow wraparound the
        # kernels rely on; a FutureWarning-era semantics change would
        # surface here as a value difference.
        values = np.array([2**63, 2**64 - 1, 2**63 - 1], dtype=np.uint64)
        assert splitmix64_array(values).tolist() == [
            splitmix64(int(v)) for v in values
        ]
