"""The columnar cache and the shuffle column side-car.

Covers the coherence rules that keep the column arrays honest: the
``Relation.columns()`` cache invalidates on mutation, ``prime_columns``
refuses shapes that don't match, and a ``Server``'s delivered side-car
is installed only when it provably covers the fragment (popped on any
other mutation).
"""

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.kernels.config import use_kernels
from repro.mpc.cluster import Cluster
from repro.mpc.server import Server


class TestRelationColumns:
    def test_columns_roundtrip(self):
        rel = Relation("R", ["x", "y"], [(1, 10), (2, 20), (3, 30)])
        cols = rel.columns()
        assert [c.tolist() for c in cols] == [[1, 2, 3], [10, 20, 30]]

    def test_cache_reused_until_mutation(self):
        rel = Relation("R", ["x"], [(1,), (2,)])
        first = rel.columns()
        assert rel.columns() is first
        rel.add((3,))
        second = rel.columns()
        assert second is not first
        assert second[0].tolist() == [1, 2, 3]

    def test_mixed_types_cache_none(self):
        rel = Relation("R", ["x"], [("a",)])
        assert rel.columns() is None
        assert rel.columns() is None  # the miss is cached too

    def test_prime_columns_accepts_matching(self):
        rel = Relation("R", ["x", "y"], [(1, 2), (3, 4)])
        primed = [np.array([1, 3]), np.array([2, 4])]
        rel.prime_columns(primed)
        assert rel.columns() is not None
        assert rel.columns()[0] is primed[0]

    def test_prime_columns_rejects_wrong_shapes(self):
        rel = Relation("R", ["x", "y"], [(1, 2), (3, 4)])
        rel.prime_columns([np.array([1, 3])])           # wrong arity
        assert rel._cached_key_columns((0,)) is None
        rel.prime_columns([np.array([1]), np.array([2])])  # wrong length
        assert rel._cached_key_columns((0,)) is None
        rel.prime_columns(None)
        assert rel._cached_key_columns((0,)) is None

    def test_cached_key_columns_never_extracts(self):
        rel = Relation("R", ["x", "y"], [(1, 2), (3, 4)])
        assert rel._cached_key_columns((1,)) is None  # cold cache: no work
        rel.columns()
        cached = rel._cached_key_columns((1, 0))
        assert [c.tolist() for c in cached] == [[2, 4], [1, 3]]


class TestServerSideCar:
    def test_take_with_columns_subsets_and_validates(self):
        server = Server(0)
        server.fragment("f").extend([(1, 10), (2, 20)])
        server.put_columns("f", (0, 1), [np.array([1, 2]), np.array([10, 20])])
        rows, cols = server.take_with_columns("f", (1,))
        assert rows == [(1, 10), (2, 20)]
        assert cols[0].tolist() == [10, 20]
        # Consumed: fragment and cache are both gone.
        assert server.take("f") == []

    def test_take_with_columns_missing_key(self):
        server = Server(0)
        server.fragment("f").extend([(1, 10)])
        server.put_columns("f", (0,), [np.array([1])])
        rows, cols = server.take_with_columns("f", (1,))  # column 1 not stored
        assert rows == [(1, 10)]
        assert cols is None

    def test_stale_side_car_dropped_on_length_mismatch(self):
        server = Server(0)
        server.fragment("f").extend([(1, 10), (2, 20), (3, 30)])
        server.put_columns("f", (0,), [np.array([1, 2])])  # too short
        rows, cols = server.take_with_columns("f", (0,))
        assert len(rows) == 3
        assert cols is None

    def test_put_and_take_invalidate_cache(self):
        server = Server(0)
        server.fragment("f").extend([(1,)])
        server.put_columns("f", (0,), [np.array([1])])
        server.put("f", [(2,)])  # replaces rows: cache must not survive
        rows, cols = server.take_with_columns("f", (0,))
        assert rows == [(2,)] and cols is None


class TestDeliveredSideCar:
    @pytest.fixture(autouse=True)
    def _force_kernels(self):
        # try_route honors the REPRO_KERNELS switch; these tests target
        # the kernel path itself, so pin it on regardless of environment.
        with use_kernels(True):
            yield

    def test_kernel_shuffle_delivers_columns(self):
        cluster = Cluster(4, seed=0)
        rel = Relation("R", ["x", "y"], [(i, i * 10) for i in range(40)])
        rel.columns()
        frag = cluster.scatter(rel, "R@in")
        h = cluster.hash_function(0)
        from repro.kernels.partition import try_route

        with cluster.round("shuffle") as rnd:
            for server in cluster.servers:
                rows, cols = server.take_with_columns(frag, (0,))
                assert try_route(rnd, rows, (0,), h, "R@j", columns=cols)
        for server in cluster.servers:
            rows, cols = server.take_with_columns("R@j", (0,))
            if rows:
                assert cols is not None
                assert cols[0].tolist() == [row[0] for row in rows]

    def test_partial_coverage_blocks_install(self):
        # One scalar send into the same fragment means the side-car no
        # longer covers every delivered row — it must not be installed.
        cluster = Cluster(2, seed=0)
        from repro.kernels.partition import try_route

        h = cluster.hash_function(0)
        rows = [(i, i) for i in range(10)]
        with cluster.round("shuffle") as rnd:
            assert try_route(rnd, rows, (0,), h, "f", columns=None)
            rnd.send(0, "f", (99, 99))
        target = cluster.servers[0]
        delivered, cols = target.take_with_columns("f", (0,))
        assert (99, 99) in delivered
        assert cols is None

    def test_preexisting_rows_block_install(self):
        cluster = Cluster(2, seed=0)
        from repro.kernels.partition import try_route

        h = cluster.hash_function(0)
        for server in cluster.servers:
            server.fragment("f").append((-1, -1))
        with cluster.round("shuffle") as rnd:
            assert try_route(rnd, [(i, i) for i in range(10)], (0,), h, "f",
                             columns=None)
        for server in cluster.servers:
            rows, cols = server.take_with_columns("f", (0,))
            assert rows[0] == (-1, -1)
            assert cols is None
