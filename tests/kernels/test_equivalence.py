"""Kernel-equivalence property tests: vectorized == pure-Python, exactly.

Every kernel must be a byte-identical drop-in for the tuple-at-a-time
code it replaces — same values, same order, no "close enough". Hypothesis
drives random *and* adversarial inputs: Zipf-style skew (tiny key pools),
all-equal keys, negative integers down to the int64 boundary, and
mixed-type columns that must make the kernels refuse (return ``None``)
rather than guess.
"""

from bisect import bisect_left

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.kernels.columnar import comparable_int64, key_columns
from repro.kernels.config import use_kernels
from repro.kernels.join import join_rows_columnar, semijoin_mask
from repro.kernels.partition import hash_destinations, partition_indices
from repro.kernels.splitters import searchsorted_buckets, tuple_buckets
from repro.mpc.hashing import HashFamily

INT64 = st.integers(-(2**63), 2**63 - 1)
SMALL = st.integers(-4, 4)                      # heavy collisions
SKEWED = st.sampled_from([0, 0, 0, 0, 1, 1, 2, 7, -3])  # Zipf-ish pool
VALUE_STRATEGIES = [INT64, SMALL, SKEWED, st.just(5)]   # st.just = all-equal


def rows_strategy(arity: int, values=None):
    element = st.one_of(*VALUE_STRATEGIES) if values is None else values
    return st.lists(st.tuples(*[element] * arity), max_size=60)


# --------------------------------------------------------------- hashing


class TestHashDestinations:
    @settings(max_examples=50, deadline=None)
    @given(rows=rows_strategy(2), hash_index=st.integers(0, 3))
    def test_matches_scalar_loop(self, rows, hash_index):
        h = HashFamily(7).function(hash_index, 16)
        got = hash_destinations(rows, (1, 0), h)
        assert got is not None
        assert got.tolist() == [h((row[1], row[0])) for row in rows]

    @settings(max_examples=20, deadline=None)
    @given(rows=st.lists(st.tuples(st.text(max_size=3), SMALL), min_size=1,
                         max_size=20))
    def test_refuses_non_integer_keys(self, rows):
        h = HashFamily(7).function(0, 16)
        assert hash_destinations(rows, (0,), h) is None

    @settings(max_examples=20, deadline=None)
    @given(rows=st.lists(st.tuples(st.booleans(), SMALL), min_size=1,
                         max_size=30))
    def test_bools_hash_like_python_ints(self, rows):
        # Python dict/set semantics treat True == 1; the kernels widen
        # bool columns to integers and must agree with the scalar path.
        h = HashFamily(7).function(1, 8)
        got = hash_destinations(rows, (0,), h)
        assert got is not None
        assert got.tolist() == [h((row[0],)) for row in rows]


class TestPartitionIndices:
    @settings(max_examples=50, deadline=None)
    @given(destinations=st.lists(st.integers(0, 7), max_size=80))
    def test_stable_grouping(self, destinations):
        array = np.array(destinations, dtype=np.int64)
        groups = partition_indices(array, 8)
        assert len(groups) == 8
        for dest, group in enumerate(groups):
            assert [destinations[i] for i in group] == [dest] * len(group)
            assert list(group) == sorted(group)  # original order kept
        assert sum(len(g) for g in groups) == len(destinations)


# ------------------------------------------------------------------ joins


def dict_join_reference(left, right, left_idx, right_idx, payload_idx):
    index = {}
    for row in right:
        index.setdefault(tuple(row[i] for i in right_idx), []).append(row)
    out = []
    for row in left:
        for match in index.get(tuple(row[i] for i in left_idx), ()):
            out.append(row + tuple(match[i] for i in payload_idx))
    return out


class TestJoinKernel:
    @settings(max_examples=60, deadline=None)
    @given(left=rows_strategy(2), right=rows_strategy(2))
    def test_matches_dict_join_single_key(self, left, right):
        got = join_rows_columnar(left, right, (1,), (0,), (1,))
        assert got == dict_join_reference(left, right, (1,), (0,), (1,))

    @settings(max_examples=40, deadline=None)
    @given(left=rows_strategy(3), right=rows_strategy(3))
    def test_matches_dict_join_two_keys(self, left, right):
        got = join_rows_columnar(left, right, (0, 2), (2, 0), (1,))
        assert got == dict_join_reference(left, right, (0, 2), (2, 0), (1,))

    @settings(max_examples=20, deadline=None)
    @given(left=st.lists(st.tuples(st.text(max_size=2), SMALL), min_size=1,
                         max_size=15),
           right=st.lists(st.tuples(st.text(max_size=2), SMALL), min_size=1,
                          max_size=15))
    def test_refuses_mixed_type_keys(self, left, right):
        assert join_rows_columnar(left, right, (0,), (0,), (1,)) is None

    def test_uint64_overflow_rejected(self):
        # A uint64 column above int64.max cannot be compared exactly in
        # int64 space; the kernel must refuse, not wrap around.
        big = np.array([2**63 + 1], dtype=np.uint64)
        assert comparable_int64(big) is None


class TestSemijoinKernel:
    @settings(max_examples=60, deadline=None)
    @given(rows=rows_strategy(2), members=rows_strategy(1))
    def test_matches_set_membership(self, rows, members):
        mask = semijoin_mask(rows, (1,), members)
        assert mask is not None
        member_set = set(members)
        assert mask.tolist() == [(row[1],) in member_set for row in rows]

    @settings(max_examples=30, deadline=None)
    @given(rows=rows_strategy(3), members=rows_strategy(2))
    def test_matches_set_membership_two_keys(self, rows, members):
        mask = semijoin_mask(rows, (2, 0), members)
        assert mask is not None
        member_set = set(members)
        assert mask.tolist() == [(row[2], row[0]) in member_set for row in rows]


# -------------------------------------------------------------- splitters


class TestSplitterSearch:
    @settings(max_examples=50, deadline=None)
    @given(keys=st.lists(st.one_of(INT64, SMALL), max_size=60),
           splitters=st.lists(SMALL, min_size=1, max_size=10))
    def test_scalar_buckets(self, keys, splitters):
        splitters = sorted(splitters)
        got = searchsorted_buckets(keys, splitters)
        assert got is not None
        assert got.tolist() == [bisect_left(splitters, k) for k in keys]

    @settings(max_examples=50, deadline=None)
    @given(keys=rows_strategy(2), splitters=rows_strategy(2))
    def test_tuple_buckets(self, keys, splitters):
        splitters = sorted(splitters)
        got = tuple_buckets(keys, splitters)
        if not splitters:
            return
        assert got is not None
        assert got.tolist() == [bisect_left(splitters, k) for k in keys]

    def test_mixed_tuples_refused(self):
        assert tuple_buckets([("a", 1)], [("a", 0)]) is None


# ------------------------------------------------------------- end to end


class TestEndToEndModes:
    """Whole algorithms must agree between kernel modes, bit for bit."""

    @settings(max_examples=15, deadline=None)
    @given(left=rows_strategy(2, values=SKEWED), right=rows_strategy(2, values=SKEWED),
           p=st.sampled_from([3, 8]))
    def test_hash_join_modes_identical(self, left, right, p):
        r = Relation("R", ["x", "y"], left)
        s = Relation("S", ["y", "z"], right)
        from repro.joins.hash_join import parallel_hash_join

        results = {}
        for mode in (True, False):
            with use_kernels(mode):
                run = parallel_hash_join(r, s, p=p, seed=11)
            results[mode] = (run.output.rows(), run.load, run.rounds)
        assert results[True] == results[False]

    def test_differential_instances_both_modes(self):
        # A slice of the selftest workload, run under both modes: the
        # records' loads must match execution by execution.
        from repro.testing.differential import (
            ALGORITHMS,
            generate_instances,
            run_differential,
        )

        workload = generate_instances(6, seed=202)
        reports = {}
        for mode in (True, False):
            with use_kernels(mode):
                reports[mode] = run_differential(workload, ALGORITHMS, audit=True)
        on, off = reports[True].records, reports[False].records
        assert [r.ok for r in on] == [r.ok for r in off]
        assert all(r.ok for r in on)
        assert [(r.algorithm, r.max_load) for r in on] == \
            [(r.algorithm, r.max_load) for r in off]


class TestColumnsFallback:
    def test_mixed_rows_have_no_columns(self):
        rel = Relation("M", ["a", "b"], [("x", 1), ("y", 2)])
        assert rel.columns() is None

    def test_key_columns_subset_mixed(self):
        rows = [("x", 1), ("y", 2)]
        assert key_columns(rows, (0,)) is None
        cols = key_columns(rows, (1,))
        assert cols is not None and cols[0].tolist() == [1, 2]

    def test_join_falls_back_on_mixed_relation(self):
        left = Relation("L", ["k", "v"], [("a", 1), ("b", 2), ("a", 3)])
        right = Relation("R", ["k", "w"], [("a", 10), ("c", 11)])
        for mode in (True, False):
            with use_kernels(mode):
                out = left.join(right)
            assert out.rows() == [("a", 1, 10), ("a", 3, 10)]
