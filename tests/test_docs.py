"""The documentation must not rot: every code block in docs/tutorial.md
and README.md executes against the current API."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def python_blocks(path: Path) -> list[str]:
    return re.findall(r"```python\n(.*?)```", path.read_text(), re.S)


class TestTutorialDoc:
    def test_blocks_exist(self):
        assert len(python_blocks(ROOT / "docs" / "tutorial.md")) >= 10

    def test_all_blocks_execute_in_order(self):
        namespace: dict = {}
        for i, block in enumerate(python_blocks(ROOT / "docs" / "tutorial.md")):
            try:
                exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"tutorial block {i} failed: {exc}\n{block}")


class TestReadmeDoc:
    def test_quickstart_blocks_execute(self):
        namespace: dict = {}
        for i, block in enumerate(python_blocks(ROOT / "README.md")):
            try:
                exec(compile(block, f"<readme block {i}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover
                pytest.fail(f"README block {i} failed: {exc}\n{block}")

    def test_mentions_all_top_level_docs(self):
        text = (ROOT / "README.md").read_text()
        assert "DESIGN.md" in text
        assert "EXPERIMENTS.md" in text
