"""The ``selftest --planner`` gate: record/report plumbing, the
per-instance checker, the sweep, and the CLI wiring."""

from __future__ import annotations

from repro.testing.differential import RELATIONAL_KINDS, generate_instances
from repro.testing.planner import (
    PlannerRecord,
    PlannerReport,
    check_instance,
    run_planner_selftest,
)
from repro.testing.selftest import main


def _record(**overrides) -> PlannerRecord:
    base = dict(
        instance="two_way/0", kind="two_way", chosen="hash",
        predicted_load=10.0, predicted_rounds=1, envelope=48.0,
        measured_load=12, measured_rounds=1, out_size=5,
        oracle_identical=True, forced_identical=True,
        envelope_ok=True, optimal_choice=True,
    )
    base.update(overrides)
    return PlannerRecord(**base)


# --------------------------------------------------------------- the record


def test_record_ok_requires_every_contract():
    assert _record().ok
    assert not _record(oracle_identical=False).ok
    assert not _record(forced_identical=False).ok
    assert not _record(envelope_ok=False).ok
    assert not _record(optimal_choice=False).ok
    assert not _record(error="QueryError: boom").ok


def test_record_describe_names_each_violation():
    assert "ok" in _record().describe()
    assert "oracle" in _record(oracle_identical=False).describe()
    assert "diverged from auto" in _record(forced_identical=False).describe()
    assert "envelope" in _record(envelope_ok=False).describe()
    assert "lower load" in _record(optimal_choice=False).describe()
    assert "raised" in _record(error="QueryError: boom").describe()


# --------------------------------------------------------------- the report


def test_report_pass_and_fail_verdicts():
    passing = PlannerReport(records=[_record()], instances=1)
    assert passing.ok and not passing.failures
    assert "verdict=PASS" in passing.summary_table()

    failing = PlannerReport(
        records=[_record(), _record(envelope_ok=False)], instances=2
    )
    assert not failing.ok and len(failing.failures) == 1
    assert "verdict=FAIL" in failing.summary_table()


def test_empty_report_is_not_ok():
    assert not PlannerReport().ok


def test_report_groups_by_strategy():
    report = PlannerReport(
        records=[_record(), _record(chosen="skew"), _record()], instances=3
    )
    grouped = report.by_strategy()
    assert len(grouped["hash"]) == 2 and len(grouped["skew"]) == 1
    table = report.summary_table()
    assert "hash" in table and "skew" in table


# --------------------------------------------------------- check_instance


def test_check_instance_passes_on_corpus_sample():
    for instance in generate_instances(4, seed=3, kinds=["two_way"]):
        record = check_instance(instance)
        assert record.ok, record.describe()
        assert record.chosen != "?"
        assert record.measured_load >= 0


def test_check_instance_reports_errors_as_records():
    instance = next(iter(generate_instances(1, seed=0, kinds=["two_way"])))
    object.__setattr__(instance, "query", "R(x, y), Missing(y, z)")
    record = check_instance(instance)
    assert record.error is not None and not record.ok
    assert "raised" in record.describe()


# ----------------------------------------------------------------- the sweep


def test_run_planner_selftest_small_budget():
    report = run_planner_selftest(instances=8, seed=2)
    assert report.instances == 8
    assert report.ok, [r.describe() for r in report.failures]
    kinds = {r.kind for r in report.records}
    assert kinds <= set(RELATIONAL_KINDS)


def test_run_planner_selftest_filters_non_relational_kinds():
    report = run_planner_selftest(instances=4, seed=2, kinds=["sort", "two_way"])
    assert {r.kind for r in report.records} == {"two_way"}


# -------------------------------------------------------------------- the CLI


def test_cli_planner_flag(capsys):
    assert main(["--planner", "--instances", "8", "--seed", "4"]) == 0
    out = capsys.readouterr().out
    assert "verdict=PASS" in out


def test_cli_planner_both_kernel_modes(capsys):
    assert main(["--planner", "--instances", "4", "--kernels", "both"]) == 0
    out = capsys.readouterr().out
    assert "=== planner / kernels on ===" in out
    assert "=== planner / kernels off ===" in out
