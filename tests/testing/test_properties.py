"""Metamorphic checks: the transformations themselves and the checks'
pass/fail behaviour on real and sabotaged algorithms."""

from __future__ import annotations

from collections import Counter

from repro.testing.differential import (
    AlgorithmCase,
    CaseRun,
    algorithm,
    generate_instances,
    reference_output,
)
from repro.testing.properties import (
    METAMORPHIC_CHECKS,
    check_load_monotonicity,
    check_p_stability,
    check_seed_invariance,
    check_tuple_permutation,
    permuted_instance,
    run_metamorphic,
    with_servers,
)

# ------------------------------------------------------- the transformations


def test_permuted_instance_preserves_multisets():
    instance = next(i for i in generate_instances(10, seed=0, kinds=["triangle"]))
    shuffled = permuted_instance(instance, seed=99)
    for name, rel in instance.relations.items():
        assert Counter(rel.rows()) == Counter(shuffled.relations[name].rows())
        assert rel.rows() != shuffled.relations[name].rows() or len(rel) <= 1
    assert shuffled.p == instance.p and shuffled.kind == instance.kind


def test_permuted_instance_shuffles_sort_items():
    instance = next(i for i in generate_instances(10, seed=0, kinds=["sort"]))
    shuffled = permuted_instance(instance, seed=5)
    assert Counter(instance.items) == Counter(shuffled.items)
    assert instance.items != shuffled.items


def test_with_servers_changes_only_p():
    instance = generate_instances(4, seed=1)[0]
    other = with_servers(instance, 11)
    assert other.p == 11
    assert other.relations is instance.relations
    assert other.seed == instance.seed


# -------------------------------------------------------- checks on the real


def test_checks_pass_on_hash_join():
    case = algorithm("parallel_hash_join")
    instance = next(i for i in generate_instances(20, seed=0, kinds=["two_way"])
                    if i.profile == "uniform")
    reference = reference_output(instance)
    for check in METAMORPHIC_CHECKS:
        result = check(case, instance, reference=reference)
        assert result.ok, result.describe()


def test_monotonicity_passes_on_hypercube():
    case = algorithm("hypercube_join")
    instance = next(i for i in generate_instances(20, seed=0, kinds=["triangle"]))
    result = check_load_monotonicity(case, instance)
    assert result.ok, result.describe()


def test_run_metamorphic_covers_applicable_algorithms_only():
    instances = generate_instances(2, seed=3, kinds=["matmul"])
    results = run_metamorphic(instances, monotonicity=False)
    names = {r.algorithm for r in results}
    assert names <= {"sql_matmul", "rectangle_block_matmul", "square_block_matmul"}
    assert all(r.ok for r in results), [r.describe() for r in results if not r.ok]


# ----------------------------------------------------- checks catch sabotage


def _sabotaged(base, mutate):
    def run(instance, seed):
        result = base.run(instance, seed)
        return mutate(result, instance, seed)
    return AlgorithmCase(base.name, base.family, base.kinds, run, base.claim)


def test_seed_invariance_catches_seed_dependent_output():
    base = algorithm("parallel_hash_join")

    def mutate(run, instance, seed):
        rows = run.rows if seed == instance.seed else run.rows[:-1]
        return CaseRun(rows, run.matrix, run.stats, run.details)

    case = _sabotaged(base, mutate)
    instance = next(i for i in generate_instances(20, seed=0, kinds=["two_way"])
                    if len(reference_output(i)) > 2)
    result = check_seed_invariance(case, instance)
    assert not result.ok


def test_p_stability_catches_p_dependent_output():
    base = algorithm("broadcast_join")

    def mutate(run, instance, seed):
        rows = run.rows if instance.p == 4 else run.rows + run.rows[:1]
        return CaseRun(rows, run.matrix, run.stats, run.details)

    case = _sabotaged(base, mutate)
    instance = next(i for i in generate_instances(20, seed=0, kinds=["two_way"])
                    if i.p == 4 and len(reference_output(i)) > 2)
    result = check_p_stability(case, instance)
    assert not result.ok


def test_tuple_permutation_catches_order_sensitivity():
    base = algorithm("parallel_hash_join")

    def mutate(run, instance, seed):
        # "First input tuple leaks into the output" — order-sensitive.
        first = next(iter(instance.relations["R"].rows()))
        key = first + ("sentinel",)
        return CaseRun(run.rows + [key[:len(run.rows[0])] if run.rows else key],
                       run.matrix, run.stats, run.details)

    # The sabotage above adds a row derived from input order; permuting
    # the input changes which row is added, so the two runs disagree
    # with the oracle in different ways.
    case = _sabotaged(base, mutate)
    instance = next(i for i in generate_instances(20, seed=0, kinds=["two_way"])
                    if len(reference_output(i)) > 2)
    result = check_tuple_permutation(case, instance)
    assert not result.ok


def test_monotonicity_catches_load_explosion():
    base = algorithm("parallel_hash_join")

    def mutate(run, instance, seed):
        if instance.p >= 16:
            # Fake a load blow-up at scale: report a giant max load.
            from repro.mpc.stats import RoundStats, RunStats

            stats = RunStats(instance.p)
            stats.rounds = list(run.stats.rounds)
            stats.rounds.append(
                RoundStats("sabotage", received=[10_000] + [0] * (instance.p - 1))
            )
            return CaseRun(run.rows, run.matrix, stats, run.details)
        return run

    case = _sabotaged(base, mutate)
    instance = next(i for i in generate_instances(20, seed=0, kinds=["two_way"]))
    result = check_load_monotonicity(case, instance)
    assert not result.ok
    assert "grew" in result.detail
