"""The differential runner: registry shape, instance generation, and the
harness's ability to (a) pass on the real algorithms and (b) actually
catch an injected bug."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.testing.differential import (
    ALGORITHMS,
    AlgorithmCase,
    CaseRun,
    LoadClaim,
    algorithm,
    generate_instances,
    reference_output,
    run_case,
    run_differential,
)

# ------------------------------------------------------------------- registry


def test_registry_covers_all_sixteen_entry_points():
    assert len(ALGORITHMS) == 16
    names = [case.name for case in ALGORITHMS]
    assert len(set(names)) == 16


def test_registry_family_breakdown():
    families = {}
    for case in ALGORITHMS:
        families.setdefault(case.family, []).append(case.name)
    assert len(families["joins"]) == 5
    assert len(families["multiway"]) == 5
    assert len(families["sorting"]) == 3
    assert len(families["matmul"]) == 3


def test_every_kind_is_exercised_by_some_algorithm():
    covered = set()
    for case in ALGORITHMS:
        covered.update(case.kinds)
    kinds = {i.kind for i in generate_instances(24, seed=0)}
    assert kinds <= covered


def test_algorithm_lookup():
    case = algorithm("hypercube_join")
    assert case.name == "hypercube_join"
    with pytest.raises(KeyError):
        algorithm("no_such_algorithm")


# ------------------------------------------------------------------ instances


def test_generate_instances_deterministic():
    a = generate_instances(12, seed=3)
    b = generate_instances(12, seed=3)
    assert [i.label for i in a] == [j.label for j in b]
    for x, y in zip(a, b):
        if x.relations:
            assert {k: r.rows() for k, r in x.relations.items()} == \
                   {k: r.rows() for k, r in y.relations.items()}
        assert x.items == y.items


def test_generate_instances_seed_changes_data():
    a = generate_instances(12, seed=0)
    b = generate_instances(12, seed=99)
    assert any(
        x.relations and y.relations and
        {k: r.rows() for k, r in x.relations.items()} !=
        {k: r.rows() for k, r in y.relations.items()}
        for x, y in zip(a, b) if x.kind == y.kind
    )


def test_generate_instances_respects_count_and_kinds():
    instances = generate_instances(10, seed=1, kinds=["two_way"])
    assert len(instances) == 10
    assert all(i.kind == "two_way" for i in instances)
    assert all(i.p in (4, 8, 16) for i in instances)


def test_instances_cover_skewed_and_graph_profiles():
    profiles = {i.profile for i in generate_instances(40, seed=0)}
    assert "zipf" in profiles
    assert any(p.startswith("graph") for p in profiles)


# ------------------------------------------------------------------ the sweep


def test_small_sweep_is_clean():
    instances = generate_instances(6, seed=5)
    report = run_differential(instances, ALGORITHMS)
    assert report.instances == 6
    assert report.records, "no (algorithm, instance) pairs executed"
    assert report.ok, [r.describe() for r in report.failures]
    assert not report.mismatches
    assert not report.bound_violations


def test_sweep_catches_injected_output_bug():
    """A runner that silently drops a tuple must be flagged."""
    base = algorithm("parallel_hash_join")

    def buggy_run(instance, seed):
        run = base.run(instance, seed)
        return CaseRun(run.rows[:-1], run.matrix, run.stats, run.details)

    buggy = AlgorithmCase(base.name, base.family, base.kinds, buggy_run, base.claim)
    instances = [i for i in generate_instances(20, seed=0, kinds=["two_way"])
                 if reference_output(i)]
    report = run_differential(instances[:2], [buggy])
    assert not report.ok
    assert report.mismatches
    assert any("mismatch" in r.describe() for r in report.mismatches)


def test_sweep_catches_injected_duplicate_bug():
    """Bag semantics: an extra duplicate tuple is a failure too."""
    base = algorithm("hypercube_join")

    def buggy_run(instance, seed):
        run = base.run(instance, seed)
        rows = run.rows + run.rows[:1]
        return CaseRun(rows, run.matrix, run.stats, run.details)

    buggy = AlgorithmCase(base.name, base.family, base.kinds, buggy_run, base.claim)
    instances = [i for i in generate_instances(20, seed=0, kinds=["triangle"])
                 if reference_output(i)]
    report = run_differential(instances[:1], [buggy])
    assert report.mismatches


def test_run_case_records_exceptions_instead_of_raising():
    base = algorithm("gym")

    def exploding_run(instance, seed):
        raise RuntimeError("boom")

    bad = AlgorithmCase(base.name, base.family, base.kinds, exploding_run, None)
    instance = generate_instances(4, seed=0, kinds=["path"])[0]
    record = run_case(bad, instance, reference=reference_output(instance))
    assert record.error is not None and "boom" in record.error
    assert not record.output_ok


# -------------------------------------------------------------------- claims


def test_load_claim_arithmetic():
    claim = LoadClaim(predicted=10.0, factor=2.0, additive=5.0)
    assert claim.conforms(25)
    assert not claim.conforms(26)
    assert claim.ratio(25) == pytest.approx(1.0)


def test_hash_claim_gated_on_skewed_profiles():
    case = algorithm("parallel_hash_join")
    skewed = next(i for i in generate_instances(30, seed=0, kinds=["two_way"])
                  if i.profile == "zipf")
    record = run_case(case, skewed, reference=reference_output(skewed))
    assert record.claim is None          # theory makes no IN/p promise here
    assert record.load_ok                # so conformance cannot fail


def test_skewhc_claim_gated_on_job_granularity():
    """With more residual jobs than servers the formula makes no promise."""
    case = algorithm("skewhc_join")
    instances = generate_instances(60, seed=0, kinds=["star", "path"])
    gated = ungated = 0
    for instance in instances:
        record = run_case(case, instance, reference=reference_output(instance))
        assert record.load_ok, record.describe()
        if record.claim is None:
            gated += 1
        else:
            ungated += 1
    assert ungated, "the skewhc claim never applied — gate is too broad"


def test_claims_attach_for_uniform_two_way():
    uniform = next(i for i in generate_instances(30, seed=0, kinds=["two_way"])
                   if i.profile == "uniform")
    reference = reference_output(uniform)
    for name in ("broadcast_join", "parallel_hash_join", "skew_join"):
        record = run_case(algorithm(name), uniform, reference=reference)
        assert record.claim is not None, name
        assert record.load_ok, record.describe()


def test_bound_violation_detected_when_claim_is_tight():
    """An absurdly tight claim must produce a load_ok=False record."""
    base = algorithm("cartesian_product")

    def impossible_claim(instance, run, out_size):
        return LoadClaim(predicted=0.0, factor=1.0, additive=0.0)

    strict = AlgorithmCase(base.name, base.family, base.kinds, base.run,
                           impossible_claim)
    instance = generate_instances(10, seed=0, kinds=["product"])[0]
    record = run_case(strict, instance, reference=reference_output(instance))
    assert record.output_ok
    assert not record.load_ok
    report = run_differential([instance], [strict])
    assert report.bound_violations


# ---------------------------------------------------------- instance plumbing


def test_with_different_p_same_reference():
    instance = generate_instances(6, seed=2, kinds=["sort"])[0]
    reference = reference_output(instance)
    other = replace(instance, p=4 if instance.p != 4 else 8)
    assert reference_output(other) == reference
