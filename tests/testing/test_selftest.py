"""The ``python -m repro selftest`` gate: report plumbing, CLI, and the
engine's ``verify=True`` oracle cross-check."""

from __future__ import annotations

import pytest

from repro.engine import Engine
from repro.data.generators import skewed_relation, uniform_relation
from repro.errors import OracleMismatchError
from repro.testing.differential import DifferentialRecord, DifferentialReport
from repro.testing.oracle import multiset_diff
from repro.testing.selftest import SelftestReport, main, run_selftest


# ----------------------------------------------------------------- run_selftest


def test_run_selftest_small_budget_passes():
    report = run_selftest(instances=6, seed=0, metamorphic_every=3,
                          monotonic_every=0)
    assert report.ok, report.failures
    assert report.metamorphic, "metamorphic sample was empty"
    table = report.summary_table()
    assert "verdict=PASS" in table
    assert "instances=6" in table


def test_run_selftest_restricted_to_one_algorithm():
    report = run_selftest(instances=4, seed=1, kinds=["sort"],
                          algorithms=["psrs_sort"], metamorphic_every=0,
                          monotonic_every=0)
    names = {r.algorithm for r in report.differential.records}
    assert names == {"psrs_sort"}
    assert report.ok, report.failures


# ----------------------------------------------------------------- the report


def _failing_record():
    return DifferentialRecord(
        "fake_algo", "fake/instance", "two_way", out_size=1, max_load=5,
        rounds=1, diff=multiset_diff([(1,)], [(2,)]),
    )


def test_report_failure_path():
    differential = DifferentialReport(records=[_failing_record()], instances=1)
    report = SelftestReport(differential)
    assert not report.ok
    assert report.failures
    assert "verdict=FAIL" in report.summary_table()


def test_report_counts_mismatch_in_table():
    ok_record = DifferentialRecord(
        "fake_algo", "fake/other", "two_way", out_size=1, max_load=5,
        rounds=1, diff=multiset_diff([(1,)], [(1,)]),
    )
    differential = DifferentialReport(
        records=[_failing_record(), ok_record], instances=2
    )
    table = SelftestReport(differential).summary_table()
    assert "1/2" in table


# ------------------------------------------------------------------------ CLI


def test_main_small_budget_exit_zero(capsys):
    rc = main(["--instances", "4", "--kinds", "two_way", "--no-metamorphic"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "verdict=PASS" in out


def test_main_verbose_prints_records(capsys):
    rc = main(["--instances", "2", "--kinds", "sort", "--algorithm",
               "psrs_sort", "--no-metamorphic", "--verbose"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "psrs_sort" in out


def test_module_subcommand_dispatch(capsys):
    from repro.__main__ import main as repro_main

    rc = repro_main(["selftest", "--instances", "2", "--kinds", "two_way",
                     "--no-metamorphic"])
    assert rc == 0
    assert "verdict=PASS" in capsys.readouterr().out


# -------------------------------------------------------------- Engine.verify


def _engine():
    engine = Engine(p=8, seed=2)
    engine.register(uniform_relation("R", ["x", "y"], 150, 40, seed=1))
    engine.register(skewed_relation("S", ["y", "z"], 150, "y", 40, 1.1, seed=2))
    return engine


def test_engine_verify_passes_on_real_algorithms():
    engine = _engine()
    result = engine.query("R(x, y), S(y, z)", verify=True)
    assert len(result.output) == len(engine.oracle("R(x, y), S(y, z)"))


def test_engine_oracle_matches_distributed_output():
    engine = _engine()
    result = engine.query("R(x, y), S(y, z)")
    expected = engine.oracle("R(x, y), S(y, z)")
    assert not multiset_diff(expected.rows(), result.output.rows())


def test_engine_verify_raises_on_mismatch(monkeypatch):
    import repro.engine as engine_module

    engine = _engine()

    def broken_oracle(query, relations):
        from repro.data.relation import Relation

        return Relation("OUT", ["x", "y", "z"], [(-1, -1, -1)])

    monkeypatch.setattr(engine_module, "oracle_join", broken_oracle)
    with pytest.raises(OracleMismatchError) as excinfo:
        engine.query("R(x, y), S(y, z)", verify=True)
    assert excinfo.value.diff
    assert "missing" in str(excinfo.value)


def test_engine_verify_off_by_default():
    # No oracle cost, no exception machinery: plain query still works.
    engine = _engine()
    result = engine.query("R(x, y), S(y, z)")
    assert result.stats.max_load > 0


# ------------------------------------------------------------------- --faults


def test_run_selftest_with_faults_passes():
    report = run_selftest(instances=6, seed=3, faults=True)
    assert report.ok, report.failures
    # Faults mode skips the metamorphic re-runs (they vary p and seeds,
    # which would change the plans mid-comparison).
    assert report.metamorphic == []


def test_main_faults_flag_exit_zero(capsys):
    rc = main(["--instances", "4", "--kinds", "two_way", "--faults"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "verdict=PASS" in out


def test_fault_plans_are_per_algorithm_and_reproducible():
    from repro.testing.differential import Instance, fault_plan_for

    instance = Instance(kind="two_way", profile="uniform", p=8, seed=5)
    again = Instance(kind="two_way", profile="uniform", p=8, seed=5)
    assert fault_plan_for("parallel_hash_join", instance) == \
        fault_plan_for("parallel_hash_join", again)
    assert fault_plan_for("parallel_hash_join", instance) != \
        fault_plan_for("sort_join", instance)
