"""The oracle itself is cross-checked against *independent* evaluators.

The differential harness trusts :mod:`repro.testing.oracle`; these tests
earn that trust by comparing the oracle against implementations it
deliberately does not share code with — ``Relation.join``,
``ConjunctiveQuery.evaluate``, ``numpy.matmul``, and the band join's
brute-force reference.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.data.generators import skewed_relation, uniform_relation
from repro.data.relation import Relation
from repro.query.parser import parse_query
from repro.sorting.band_join import reference_band_join
from repro.testing.oracle import (
    MultisetDiff,
    matrices_close,
    multiset_diff,
    oracle_band_join,
    oracle_join,
    oracle_matmul,
    oracle_product,
    oracle_sort,
    oracle_two_way,
    same_bag,
)


# --------------------------------------------------------------- multiset diff


def test_multiset_diff_empty_on_equal_bags():
    rows = [(1, 2), (1, 2), (3, 4)]
    diff = multiset_diff(rows, list(reversed(rows)))
    assert not diff
    assert same_bag(rows, rows)


def test_multiset_diff_counts_missing_and_extra():
    diff = multiset_diff([(1,), (1,), (2,)], [(1,), (3,)])
    assert diff
    assert diff.missing[(1,)] == 1
    assert diff.missing[(2,)] == 1
    assert diff.extra[(3,)] == 1
    assert not same_bag([(1,)], [(1,), (1,)])


def test_multiset_diff_is_bag_not_set():
    # Same support, different multiplicities: a set compare would miss it.
    assert multiset_diff([(1,), (1,)], [(1,)])


def test_multiset_diff_summary_mentions_counts():
    diff = multiset_diff([(1,), (2,)], [(3,)])
    text = diff.summary()
    assert "missing" in text and "extra" in text


def test_multiset_diff_type():
    assert isinstance(multiset_diff([], []), MultisetDiff)


# ------------------------------------------------------------ join vs Relation


def _random_relation(name, attrs, n, domain, seed):
    rng = random.Random(seed)
    rows = [tuple(rng.randrange(domain) for _ in attrs) for _ in range(n)]
    return Relation(name, list(attrs), rows)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_oracle_two_way_matches_relation_join(seed):
    r = _random_relation("R", ["x", "y"], 60, 12, seed)
    s = _random_relation("S", ["y", "z"], 60, 12, seed + 100)
    expected = r.join(s)
    got = oracle_two_way(r, s)
    assert set(got.schema.attributes) == set(expected.schema.attributes)
    aligned = expected.project(list(got.schema.attributes))
    assert same_bag(aligned.rows(), got.rows())


@pytest.mark.parametrize("text", [
    "R(x, y), S(y, z), T(z, x)",          # triangle
    "R1(a, b), R2(b, c), R3(c, d)",       # path
    "R1(h, a), R2(h, b), R3(h, c)",       # star
])
@pytest.mark.parametrize("seed", [0, 7])
def test_oracle_join_matches_cq_evaluate(text, seed):
    query = parse_query(text)
    relations = {
        atom.name: _random_relation(atom.name, atom.variables, 40, 8, seed + i)
        for i, atom in enumerate(query.atoms)
    }
    expected = query.evaluate(relations)
    got = oracle_join(query, relations)
    assert got.schema.attributes == expected.schema.attributes
    assert same_bag(expected.rows(), got.rows())


def test_oracle_join_bag_semantics():
    # Duplicate input tuples multiply: 2 copies × 3 copies = 6 outputs.
    r = Relation("R", ["x", "y"], [(1, 2)] * 2)
    s = Relation("S", ["y", "z"], [(2, 9)] * 3)
    query = parse_query("R(x, y), S(y, z)")
    out = oracle_join(query, {"R": r, "S": s})
    assert out.rows() == [(1, 2, 9)] * 6


def test_oracle_join_handles_misordered_schema():
    # The registered relation stores columns in a different order than
    # the atom uses them; the oracle must align by name.
    r = Relation("R", ["y", "x"], [(2, 1)])
    s = Relation("S", ["y", "z"], [(2, 9)])
    query = parse_query("R(x, y), S(y, z)")
    out = oracle_join(query, {"R": r, "S": s})
    assert out.rows() == [(1, 2, 9)]


def test_oracle_join_on_generated_data():
    query = parse_query("R(x, y), S(y, z)")
    r = uniform_relation("R", ["x", "y"], 80, 20, seed=3)
    s = skewed_relation("S", ["y", "z"], 80, "y", 20, 1.2, seed=4)
    expected = query.evaluate({"R": r, "S": s})
    got = oracle_join(query, {"R": r, "S": s})
    assert same_bag(expected.rows(), got.rows())


def test_oracle_product():
    r = Relation("R", ["a"], [(1,), (2,)])
    s = Relation("S", ["b"], [(10,), (20,), (30,)])
    out = oracle_product(r, s)
    assert len(out) == 6
    assert out.schema.attributes == ("a", "b")
    assert (2, 30) in out.rows()


# ------------------------------------------------------------------- band join


@pytest.mark.parametrize("epsilon", [0.0, 3.0, 50.0])
def test_oracle_band_join_matches_reference(epsilon):
    r = _random_relation("R", ["k", "u"], 50, 40, 11)
    s = _random_relation("S", ["m", "v"], 50, 40, 12)
    expected = sorted(reference_band_join(r, s, "k", "m", epsilon))
    got = sorted(oracle_band_join(r, s, "k", "m", epsilon))
    assert got == expected


# --------------------------------------------------------------------- sorting


def test_oracle_sort_matches_sorted():
    rng = random.Random(5)
    items = [rng.randrange(1000) for _ in range(300)]
    assert oracle_sort(items) == sorted(items)


def test_oracle_sort_is_stable_under_key():
    items = [(1, "b"), (0, "a"), (1, "a"), (0, "b")]
    got = oracle_sort(items, key=lambda t: t[0])
    assert got == [(0, "a"), (0, "b"), (1, "b"), (1, "a")]


# ---------------------------------------------------------------------- matmul


@pytest.mark.parametrize("n", [1, 4, 9])
def test_oracle_matmul_matches_numpy(n):
    rng = np.random.default_rng(n)
    a = rng.standard_normal((n, n + 1))
    b = rng.standard_normal((n + 1, n + 2))
    got = oracle_matmul(a.tolist(), b.tolist())
    assert matrices_close((a @ b).tolist(), got, tolerance=1e-9)


def test_matrices_close_rejects_shape_mismatch():
    assert not matrices_close([[1.0]], [[1.0], [2.0]])
    assert not matrices_close([[1.0, 2.0]], [[1.0]])


def test_matrices_close_tolerance():
    assert matrices_close([[100.0]], [[100.0 + 1e-7]], tolerance=1e-8)
    assert not matrices_close([[1.0]], [[1.1]], tolerance=1e-8)
