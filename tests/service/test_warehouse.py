"""Tests for the shared catalog: ReadWriteLock + RelationWarehouse."""

import threading
import time

import pytest

from repro.data.relation import Relation
from repro.data.warehouse import ReadWriteLock, RelationWarehouse, make_warehouse
from repro.errors import QueryError


@pytest.fixture
def wh():
    return RelationWarehouse({
        "R": Relation("R", ["a", "b"], [(1, 2), (3, 4)]),
        "S": Relation("S", ["b", "c"], [(2, 5)]),
    })


# ------------------------------------------------------------ ReadWriteLock


def test_many_concurrent_readers():
    lock = ReadWriteLock()
    inside = []
    barrier = threading.Barrier(3)

    def reader():
        with lock.read():
            barrier.wait(timeout=5)     # all three inside the read side at once
            inside.append(True)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(inside) == 3


def test_writer_excludes_readers_and_writers():
    lock = ReadWriteLock()
    log = []

    def writer():
        with lock.write():
            log.append("w-in")
            time.sleep(0.05)
            log.append("w-out")

    def reader():
        with lock.read():
            log.append("r")

    w = threading.Thread(target=writer)
    w.start()
    time.sleep(0.01)                    # let the writer take the lock
    r = threading.Thread(target=reader)
    r.start()
    w.join()
    r.join()
    assert log.index("w-out") < log.index("r")


def test_writer_preference_blocks_new_readers():
    """A waiting writer gets in before readers that arrive after it."""
    lock = ReadWriteLock()
    order = []
    first_reader_in = threading.Event()
    release_first_reader = threading.Event()

    def long_reader():
        with lock.read():
            first_reader_in.set()
            release_first_reader.wait(timeout=5)
        order.append("r1-out")

    def writer():
        first_reader_in.wait(timeout=5)
        with lock.write():
            order.append("w")

    def late_reader():
        first_reader_in.wait(timeout=5)
        time.sleep(0.05)                # arrive after the writer queued
        with lock.read():
            order.append("r2")

    threads = [
        threading.Thread(target=long_reader),
        threading.Thread(target=writer),
        threading.Thread(target=late_reader),
    ]
    for t in threads:
        t.start()
    time.sleep(0.1)
    release_first_reader.set()
    for t in threads:
        t.join()
    assert order.index("w") < order.index("r2")


# -------------------------------------------------------- RelationWarehouse


def test_read_view_is_a_snapshot(wh):
    with wh.read_view() as catalog:
        assert set(catalog) == {"R", "S"}
    wh.register(Relation("T", ["x"], [(1,)]))
    assert set(catalog) == {"R", "S"}    # old snapshot untouched
    assert wh.names() == ["R", "S", "T"]


def test_relation_lookup_and_missing(wh):
    assert wh.relation("R").name == "R"
    with pytest.raises(QueryError):
        wh.relation("missing")


def test_tokens_change_on_extend(wh):
    before = wh.tokens(["R"])
    wh.extend("R", [(9, 9)])
    after = wh.tokens(["R"])
    assert before != after
    assert before[0][0] == after[0][0] == "R"


def test_replace_requires_existing_name(wh):
    with pytest.raises(QueryError):
        wh.replace("missing", Relation("X", ["a"], [(1,)]))
    wh.replace("R", Relation("R2", ["a", "b"], [(7, 8)]))
    assert wh.relation("R").rows_readonly() == [(7, 8)]


def test_extend_unknown_name(wh):
    with pytest.raises(QueryError):
        wh.extend("missing", [(1,)])


def test_invalidation_listeners_fire_per_write(wh):
    seen = []
    wh.add_invalidation_listener(seen.append)
    wh.register(Relation("T", ["x"], [(1,)]))
    wh.extend("R", [(5, 6)])
    wh.replace("S", Relation("S", ["b", "c"], []))
    assert seen == ["T", "R", "S"]
    assert wh.mutation_count == 3


def test_listener_runs_inside_write_lock(wh):
    """No reader can observe the catalog mid-invalidation."""
    listener_running = threading.Event()
    reader_done = threading.Event()

    def listener(name):
        listener_running.set()
        # A reader started now must NOT complete until we return.
        time.sleep(0.05)
        assert not reader_done.is_set()

    wh.add_invalidation_listener(listener)

    def reader():
        listener_running.wait(timeout=5)
        with wh.read_view():
            pass
        reader_done.set()

    t = threading.Thread(target=reader)
    t.start()
    wh.extend("R", [(8, 8)])
    t.join()
    assert reader_done.is_set()


def test_from_warehouse_adopts_generated_relations():
    generated = make_warehouse(n_orders=50, n_customers=10)
    wh = RelationWarehouse.from_warehouse(generated)
    assert set(wh.names()) == {"Customers", "Orders", "Lineitems", "Parts"}
    assert len(wh.relation("Orders")) == 50
