"""The deterministic concurrency harness for the query service.

Heavy multi-thread suites, marked ``concurrency`` (excluded from the
tier-1 default run; the CI ``service`` job runs them repeatedly under
``PYTHONHASHSEED=0``). Determinism techniques:

- **barrier-synchronized pools**: every client thread parks on a
  barrier and the whole pool releases at once, so the queue, quotas,
  and cache actually contend instead of running nose-to-tail;
- **seeded interleavings**: each scenario draws its tenant/query/split
  mix from ``random.Random(seed)``, so a failure replays exactly;
- **hypothesis-driven mixes**: the byte-identity property runs over
  generated workload mixes, shrinking to a minimal failing schedule.
"""

import random
import threading
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.errors import AdmissionError
from repro.service import QueryService, TenantQuota
from repro.service.splitter import canonical
from repro.testing.oracle import oracle_join
from repro.query.parser import parse_query

pytestmark = pytest.mark.concurrency

QUERIES = (
    "Q(a, b, c) :- R(a, b), S(b, c)",
    "Q(a, b) :- R(a, b)",
    "Q(b, c) :- S(b, c)",
    "Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)",
)


def relations(n=80):
    return {
        "R": Relation("R", ["a", "b"], [(i, i % 7) for i in range(n)]),
        "S": Relation("S", ["b", "c"], [(i % 7, i % 11) for i in range(n)]),
        "T": Relation("T", ["c", "d"], [(i % 11, i) for i in range(n // 2)]),
    }


def run_clients(service, plans):
    """Start one barrier-synchronized thread per plan; collect outcomes.

    Each plan is a list of (query, tenant, split) submissions. Returns
    (results, rejections, errors) where results maps a submission to
    its canonical output rows.
    """
    barrier = threading.Barrier(len(plans))
    results = []
    rejections = []
    errors = []
    lock = threading.Lock()

    def client(plan):
        try:
            barrier.wait(timeout=30)
        except threading.BrokenBarrierError as exc:
            with lock:
                errors.append(exc)
            return
        for query, tenant, split in plan:
            try:
                result = service.query(
                    query, tenant=tenant, split=split, timeout=60
                )
            except AdmissionError as exc:
                with lock:
                    rejections.append(exc)
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)
            else:
                with lock:
                    results.append(
                        (query, split,
                         tuple(canonical(result.output).rows_readonly()))
                    )
    threads = [threading.Thread(target=client, args=(p,)) for p in plans]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, rejections, errors


def serial_baselines(rels, queries=QUERIES):
    expected = {}
    for query in queries:
        cq = parse_query(query)
        out = oracle_join(cq, rels)
        expected[query] = tuple(sorted(out.rows_readonly()))
    return expected


def seeded_plans(seed, clients, per_client, max_split=3):
    rng = random.Random(seed)
    plans = []
    for index in range(clients):
        plan = []
        for _ in range(per_client):
            query = rng.choice(QUERIES)
            split = (
                rng.randint(2, max_split)
                if max_split >= 2 and rng.random() < 0.3
                and query.count("(") > 2 else 1
            )
            tenant = f"tenant-{rng.randint(0, 2)}"
            plan.append((query, tenant, split))
        plans.append(plan)
    return plans


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_byte_identity_under_contention(seed):
    """Every concurrent result equals the serial oracle, byte for byte."""
    rels = relations()
    expected = serial_baselines(rels)
    with QueryService(
        rels, p=4, workers=4, queue_size=128,
        default_quota=TenantQuota(max_in_flight=64),
    ) as service:
        plans = seeded_plans(seed, clients=6, per_client=8)
        results, rejections, errors = run_clients(service, plans)
        assert not errors
        assert not rejections          # quotas sized to admit everything
        assert len(results) == 6 * 8
        for query, _split, rows in results:
            assert rows == expected[query], f"{query} diverged (seed {seed})"


def test_overload_rejects_gracefully_and_recovers():
    """A swamped service rejects typed errors, loses nothing, recovers."""
    rels = relations()
    with QueryService(
        rels, p=4, workers=1, queue_size=2,
        default_quota=TenantQuota(max_in_flight=2),
    ) as service:
        plans = seeded_plans(7, clients=8, per_client=6, max_split=1)
        results, rejections, errors = run_clients(service, plans)
        assert not errors
        # Conservation: every submission either completed or was rejected.
        assert len(results) + len(rejections) == 8 * 6
        stats = service.stats()
        assert stats.completed == len(results)
        assert stats.rejected == len(rejections)
        assert stats.rejected_in_flight + stats.rejected_queue_full == \
            stats.rejected
        # No slots leaked: the service still serves after the storm.
        assert all(t.in_flight == 0 for t in stats.tenants.values())
        after = service.query(QUERIES[0], timeout=30)
        assert after.output


def test_quota_never_exceeded_under_contention():
    """max_in_flight is a hard bound even with racing submitters."""
    rels = relations()
    quota = TenantQuota(max_in_flight=3)
    with QueryService(
        rels, p=4, workers=4, queue_size=128, default_quota=quota
    ) as service:
        peak = [0]
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def submitter():
            barrier.wait(timeout=30)
            for _ in range(10):
                try:
                    ticket = service.submit(QUERIES[1], tenant="shared")
                except AdmissionError:
                    continue
                with lock:
                    in_flight = service.stats().tenants["shared"].in_flight
                    peak[0] = max(peak[0], in_flight)
                ticket.result(timeout=60)

        threads = [threading.Thread(target=submitter) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert 0 < peak[0] <= 3


def test_cache_coherent_across_concurrent_mutation():
    """Readers racing a writer only ever see pre- or post-mutation truth."""
    rels = relations()
    query = QUERIES[0]
    cq = parse_query(query)
    before = tuple(sorted(oracle_join(cq, rels).rows_readonly()))
    new_rows = [(1000 + i, i % 7) for i in range(10)]
    mutated = dict(rels)
    mutated["R"] = Relation(
        "R", ["a", "b"], list(rels["R"].rows_readonly()) + new_rows
    )
    after = tuple(sorted(oracle_join(cq, mutated).rows_readonly()))
    assert before != after

    with QueryService(
        rels, p=4, workers=4, queue_size=128,
        default_quota=TenantQuota(max_in_flight=64),
    ) as service:
        outputs = []
        errors = []
        lock = threading.Lock()
        barrier = threading.Barrier(5)

        def reader(index):
            try:
                barrier.wait(timeout=30)
                for _ in range(12):
                    result = service.query(query, tenant=f"r{index}", timeout=60)
                    with lock:
                        outputs.append(
                            tuple(canonical(result.output).rows_readonly())
                        )
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)

        def writer():
            try:
                barrier.wait(timeout=30)
                service.extend("R", new_rows)
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Atomicity: never a torn catalog — only the two legal answers.
        torn = [rows for rows in outputs if rows not in (before, after)]
        assert not torn
        # Coherency: once the write landed, a fresh query sees the new rows.
        final = service.query(query, timeout=60)
        assert tuple(canonical(final.output).rows_readonly()) == after
        counts = Counter(
            "after" if rows == after else "before" for rows in outputs
        )
        assert counts["before"] + counts["after"] == len(outputs)


@settings(max_examples=10, deadline=None)
@given(
    mix=st.lists(
        st.tuples(
            st.sampled_from(QUERIES),
            st.sampled_from(["alice", "bob", "carol"]),
            st.sampled_from([1, 1, 1, 2, 3]),
        ),
        min_size=4, max_size=16,
    ),
    clients=st.integers(2, 4),
)
def test_hypothesis_mixes_stay_byte_identical(mix, clients):
    """Any tenant/query/split mix under any client count is oracle-exact."""
    rels = relations(n=40)
    expected = serial_baselines(rels)
    legal = [
        (q, t, s if q.count("(") > 2 else 1) for q, t, s in mix
    ]
    plans = [legal[i::clients] for i in range(clients)]
    plans = [p for p in plans if p]
    with QueryService(
        rels, p=4, workers=3, queue_size=128,
        default_quota=TenantQuota(max_in_flight=64),
    ) as service:
        results, rejections, errors = run_clients(service, plans)
        assert not errors
        assert not rejections
        assert len(results) == len(legal)
        for query, _split, rows in results:
            assert rows == expected[query]
