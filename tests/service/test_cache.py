"""Unit tests for the service result cache (repro.service.cache)."""

import threading

import pytest

from repro.service.cache import CacheKey, ResultCache


def key(query="Q(x) :- R(x)", token=0, name="R", split=1, strategy="auto"):
    return CacheKey(
        query=query, p=4, seed=0, strategy=strategy, split=split,
        relation_state=((name, 1, token),),
    )


def test_miss_then_hit_then_counters():
    cache = ResultCache(capacity=4)
    assert cache.get(key()) is None
    cache.put(key(), "value")
    assert cache.get(key()) == "value"
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
    assert stats.hit_rate == pytest.approx(0.5)


def test_token_change_is_a_miss():
    cache = ResultCache()
    cache.put(key(token=1), "old")
    assert cache.get(key(token=2)) is None
    assert cache.get(key(token=1)) == "old"


def test_lru_eviction_order_and_counter():
    cache = ResultCache(capacity=2)
    cache.put(key(query="a"), 1)
    cache.put(key(query="b"), 2)
    assert cache.get(key(query="a")) == 1      # bump a to most-recent
    cache.put(key(query="c"), 3)               # evicts b, the oldest
    assert cache.get(key(query="b")) is None
    assert cache.get(key(query="a")) == 1
    assert cache.get(key(query="c")) == 3
    assert cache.stats().evictions == 1


def test_put_existing_key_refreshes_without_eviction():
    cache = ResultCache(capacity=2)
    cache.put(key(query="a"), 1)
    cache.put(key(query="b"), 2)
    cache.put(key(query="a"), 10)              # replace, not insert
    assert cache.stats().evictions == 0
    assert cache.get(key(query="a")) == 10


def test_capacity_zero_disables_caching():
    cache = ResultCache(capacity=0)
    cache.put(key(), "value")
    assert cache.get(key()) is None
    assert len(cache) == 0


def test_invalidate_relation_drops_only_matching_entries():
    cache = ResultCache()
    cache.put(key(query="a", name="R"), 1)
    cache.put(key(query="b", name="S"), 2)
    assert cache.invalidate_relation("R") == 1
    assert cache.get(key(query="a", name="R")) is None
    assert cache.get(key(query="b", name="S")) == 2
    assert cache.stats().invalidations == 1


def test_invalidate_all():
    cache = ResultCache()
    cache.put(key(query="a"), 1)
    cache.put(key(query="b"), 2)
    assert cache.invalidate_all() == 2
    assert len(cache) == 0


def test_distinct_split_and_strategy_are_distinct_entries():
    cache = ResultCache()
    cache.put(key(split=1), "whole")
    cache.put(key(split=2), "split")
    cache.put(key(strategy="hash"), "forced")
    assert cache.get(key(split=1)) == "whole"
    assert cache.get(key(split=2)) == "split"
    assert cache.get(key(strategy="hash")) == "forced"


def test_concurrent_hammer_is_consistent():
    """N threads mixing gets/puts/invalidations never corrupt the LRU."""
    cache = ResultCache(capacity=8)
    barrier = threading.Barrier(4)
    errors = []

    def worker(index):
        try:
            barrier.wait(timeout=10)
            for i in range(300):
                k = key(query=f"q{(index + i) % 12}")
                if i % 7 == 0:
                    cache.invalidate_relation("R")
                cache.put(k, (index, i))
                cache.get(k)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = cache.stats()
    assert stats.size <= 8
    assert stats.hits + stats.misses == 4 * 300
