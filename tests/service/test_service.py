"""End-to-end tests for QueryService: admission, caching, splitting."""

import threading
import time

import pytest

from repro.data.relation import Relation
from repro.data.warehouse import make_warehouse
from repro.errors import (
    InFlightQuotaError,
    LoadCapQuotaError,
    QueryError,
    QueueFullError,
    ServiceClosedError,
)
from repro.service import QueryService, TenantQuota
from repro.service.splitter import canonical

QUERY = "Q(a, b, c) :- R(a, b), S(b, c)"


def relations():
    return {
        "R": Relation("R", ["a", "b"], [(i, i % 5) for i in range(60)]),
        "S": Relation("S", ["b", "c"], [(i % 5, i) for i in range(40)]),
    }


class GateRelation(Relation):
    """A relation whose first read blocks until the gate opens.

    Lets tests park a worker thread inside an execution at a known
    point, making quota and backpressure scenarios deterministic.
    """

    def attach_gate(self, gate: threading.Event) -> None:
        self.gate = gate

    def __len__(self):
        self.gate.wait(timeout=10)
        return super().__len__()

    def rows_readonly(self):
        self.gate.wait(timeout=10)
        return super().rows_readonly()

    def columns(self):
        self.gate.wait(timeout=10)
        return super().columns()


def gated_service(**kwargs):
    gate = threading.Event()
    rel = GateRelation("G", ["a", "b"], [(i, i % 3) for i in range(10)])
    rel.attach_gate(gate)
    service = QueryService({"G": rel}, p=4, **kwargs)
    return service, gate


# ------------------------------------------------------------------ basics


def test_query_end_to_end_and_verify():
    with QueryService(relations(), p=4) as service:
        result = service.query(QUERY, verify=True)
        assert len(result.output) == 60 * 8   # 5 groups x fanout
        assert result.cache_hit is False
        assert result.max_load > 0
        assert result.rounds >= 1
        assert result.strategy


def test_accepts_generated_warehouse():
    with QueryService(make_warehouse(n_orders=60, n_customers=12), p=4) as svc:
        result = svc.query(
            "Q(order, cust, month, region, segment) :- "
            "Orders(order, cust, month), Customers(cust, region, segment)"
        )
        assert len(result.output) == 60


def test_unknown_relation_fails_the_ticket():
    with QueryService(relations(), p=4) as service:
        with pytest.raises(QueryError, match="no relation"):
            service.query("Q(x, y) :- Missing(x, y)")
        assert service.stats().failed == 1


def test_constructor_validation():
    with pytest.raises(QueryError):
        QueryService(relations(), workers=0)
    with pytest.raises(QueryError):
        QueryService(relations(), queue_size=0)
    with pytest.raises(QueryError):
        TenantQuota(max_in_flight=0)
    with pytest.raises(QueryError):
        TenantQuota(load_cap=0.0)


def test_split_argument_validation():
    with QueryService(relations(), p=4) as service:
        with pytest.raises(QueryError):
            service.query(QUERY, split=0)
        with pytest.raises(QueryError):
            service.query("Q(a, b) :- R(a, b)", split=2)


# ------------------------------------------------------------ admission


def test_closed_service_rejects():
    service = QueryService(relations(), p=4)
    service.close()
    with pytest.raises(ServiceClosedError):
        service.submit(QUERY)


def test_in_flight_quota_enforced_deterministically():
    service, gate = gated_service(
        workers=2, default_quota=TenantQuota(max_in_flight=1)
    )
    try:
        ticket = service.submit("Q(a, b) :- G(a, b)")
        with pytest.raises(InFlightQuotaError) as exc_info:
            service.submit("Q(a, b) :- G(a, b)")
        assert exc_info.value.tenant == "default"
        gate.set()
        ticket.result(timeout=10)
        # Slot released: the same tenant can submit again.
        assert service.query("Q(a, b) :- G(a, b)", timeout=10)
        stats = service.stats()
        assert stats.rejected_in_flight == 1
        assert stats.tenants["default"].rejected_in_flight == 1
    finally:
        gate.set()
        service.close()


def test_quota_is_per_tenant():
    service, gate = gated_service(
        workers=2, default_quota=TenantQuota(max_in_flight=1)
    )
    try:
        first = service.submit("Q(a, b) :- G(a, b)", tenant="alice")
        second = service.submit("Q(a, b) :- G(a, b)", tenant="bob")
        gate.set()
        assert first.result(timeout=10).output
        assert second.result(timeout=10).output
    finally:
        gate.set()
        service.close()


def test_queue_full_rejection():
    service, gate = gated_service(workers=1, queue_size=1)
    try:
        first = service.submit("Q(a, b) :- G(a, b)")
        # Wait for the single worker to take the first job off the queue.
        deadline = time.time() + 5
        while service._queue.qsize() > 0 and time.time() < deadline:
            time.sleep(0.005)
        service.submit("Q(a, b) :- G(a, b)")          # fills the queue
        with pytest.raises(QueueFullError):
            service.submit("Q(a, b) :- G(a, b)")
        gate.set()
        first.result(timeout=10)
        assert service.stats().rejected_queue_full == 1
    finally:
        gate.set()
        service.close()


def test_load_cap_rejects_expensive_queries():
    quota = TenantQuota(load_cap=0.5)
    with QueryService(relations(), p=4, default_quota=quota) as service:
        with pytest.raises(LoadCapQuotaError) as exc_info:
            service.submit(QUERY)
        assert exc_info.value.predicted > 0.5
        stats = service.stats()
        assert stats.rejected_load_cap == 1
        # The reserved slot was released on rejection.
        assert stats.tenants["default"].in_flight == 0


def test_load_cap_admits_cheap_queries_and_prices_splits():
    quota = TenantQuota(load_cap=1e9)
    with QueryService(relations(), p=4, quotas={"t": quota}) as service:
        assert service.query(QUERY, tenant="t").output
        assert service.query(QUERY, tenant="t", split=2).output
        assert service.stats().rejected_load_cap == 0


def test_ticket_timeout_then_success():
    service, gate = gated_service(workers=1)
    try:
        ticket = service.submit("Q(a, b) :- G(a, b)")
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.05)
        gate.set()
        assert ticket.result(timeout=10).output
    finally:
        gate.set()
        service.close()


# ------------------------------------------------------------------ cache


def test_repeat_query_hits_cache():
    with QueryService(relations(), p=4) as service:
        miss = service.query(QUERY)
        hit = service.query(QUERY)
        assert (miss.cache_hit, hit.cache_hit) == (False, True)
        assert canonical(miss.output).rows_readonly() == \
            canonical(hit.output).rows_readonly()
        stats = service.stats().cache
        assert (stats.hits, stats.misses) == (1, 1)


def test_mutation_invalidates_cache():
    with QueryService(relations(), p=4) as service:
        service.query(QUERY)
        service.extend("R", [(100, 0)])
        result = service.query(QUERY)
        assert result.cache_hit is False
        assert len(result.output) == 60 * 8 + 8
        assert service.stats().cache.invalidations >= 1


def test_register_invalidates_cache():
    with QueryService(relations(), p=4) as service:
        before = service.query(QUERY)
        service.register(Relation("R", ["a", "b"], [(1, 2)]))
        after = service.query(QUERY)
        assert after.cache_hit is False
        assert len(after.output) < len(before.output)


def test_cache_hits_return_detached_outputs():
    """Mutating one hit's output must not corrupt later hits."""
    with QueryService(relations(), p=4) as service:
        service.query(QUERY)
        first = service.query(QUERY)
        expected = list(first.output.rows_readonly())
        first.output.rows().append(("junk",))      # borrow + mutate
        second = service.query(QUERY)
        assert second.cache_hit is True
        assert second.output.rows_readonly() == expected


def test_cache_disabled_never_hits():
    with QueryService(relations(), p=4, cache_size=0) as service:
        service.query(QUERY)
        assert service.query(QUERY).cache_hit is False


def test_strategy_and_split_key_separately():
    with QueryService(relations(), p=4) as service:
        service.query(QUERY)
        forced = service.query(QUERY, strategy="hash")
        split = service.query(QUERY, split=2)
        assert forced.cache_hit is False
        assert split.cache_hit is False
        assert service.query(QUERY, split=2).cache_hit is True


# ------------------------------------------------------------------ split


def test_split_results_byte_identical_to_whole():
    with QueryService(relations(), p=4) as service:
        whole = service.query(QUERY)
        for k in (2, 3, 5):
            split = service.query(QUERY, split=k)
            assert split.split == k
            assert len(split.strategy) == k
            assert split.output.rows_readonly() == \
                canonical(whole.output).rows_readonly()


def test_split_verify_against_oracle():
    with QueryService(relations(), p=4) as service:
        result = service.query(QUERY, split=3, verify=True)
        assert result.total_load >= result.max_load


def test_split_branches_share_one_alignment_memo():
    # Branch engines borrow the service engine's alignment memo
    # (``align_with``): the unsplit inputs — identical relation objects
    # in every branch — are aligned and stored once, and every branch
    # hit lands in the one counter ``stats()`` reports. cache_size=0
    # keeps the result cache out of the measurement.
    with QueryService(relations(), p=4, cache_size=0) as service:
        service.query(QUERY)  # warms the alignments of R and S
        entries_before = len(service._engine._align_cache)
        hits_before = service.stats().align_cache_hits
        service.query(QUERY, split=3)
        # At least the unsplit input hit in each of the three branches;
        # nothing was double-stored for it.
        assert service.stats().align_cache_hits - hits_before >= 3
        assert len(service._engine._align_cache) <= entries_before + 3


def test_split_branch_registration_keeps_the_shared_memo():
    # A branch engine registers its bindings on construction; the
    # borrower's register() must not wipe the owner's memo, so a repeat
    # split query hits instead of re-deriving.
    with QueryService(relations(), p=4, cache_size=0) as service:
        service.query(QUERY, split=2)
        hits_before = service.stats().align_cache_hits
        repeat = service.query(QUERY, split=2)
        assert service.stats().align_cache_hits > hits_before
        whole = service.query(QUERY)
        assert repeat.output.rows_readonly() == \
            canonical(whole.output).rows_readonly()


# ------------------------------------------------------------------ stats


def test_stats_snapshot_is_complete():
    with QueryService(relations(), p=4) as service:
        service.query(QUERY)
        service.query(QUERY, split=2)
        stats = service.stats()
        assert stats.submitted == stats.admitted == stats.completed == 2
        assert stats.failed == 0
        assert stats.rejected == 0
        assert stats.split_queries == 1
        assert stats.tenants["default"].completed == 2
        assert stats.tenants["default"].in_flight == 0


def test_context_manager_closes():
    with QueryService(relations(), p=4) as service:
        service.query(QUERY)
    with pytest.raises(ServiceClosedError):
        service.submit(QUERY)
    service.close()     # idempotent
