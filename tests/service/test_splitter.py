"""Tests for the query-splitting rewriter (repro.service.splitter)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.engine import Engine
from repro.errors import QueryError
from repro.query.parser import parse_query
from repro.service.splitter import (
    canonical,
    choose_split_atom,
    merge_branches,
    split_bindings,
    split_relation,
)


@pytest.fixture
def r():
    return Relation("R", ["a", "b"], [(i, i % 5) for i in range(40)])


@pytest.fixture
def s():
    return Relation("S", ["b", "c"], [(i % 5, i) for i in range(25)])


def test_split_is_a_partition(r):
    fragments = split_relation(r, 3)
    assert len(fragments) == 3
    whole = Counter(r.rows_readonly())
    pieces = Counter()
    for fragment in fragments:
        pieces.update(fragment.rows_readonly())
    assert whole == pieces
    for fragment in fragments:
        assert fragment.schema.attributes == r.schema.attributes


def test_split_respects_mod_rule(r):
    fragments = split_relation(r, 4, attribute="a")
    for branch, fragment in enumerate(fragments):
        assert all(row[0] % 4 == branch for row in fragment.rows_readonly())


def test_split_columnar_input_stays_columnar():
    rel = Relation.from_columns(
        "R", ["a", "b"],
        [list(range(20)), [i % 3 for i in range(20)]],
    )
    fragments = split_relation(rel, 2)
    assert all(f.columns() is not None for f in fragments)
    whole = Counter(rel.rows_readonly())
    pieces = Counter()
    for fragment in fragments:
        pieces.update(fragment.rows_readonly())
    assert whole == pieces


def test_split_k1_returns_relation_unchanged(r):
    assert split_relation(r, 1) == [r]


def test_split_errors():
    rel = Relation("R", ["a"], [(1,)])
    with pytest.raises(QueryError):
        split_relation(rel, 0)
    with pytest.raises(QueryError):
        split_relation(rel, 2, attribute="nope")


def test_split_non_integer_values_partition():
    rel = Relation("R", ["a", "b"], [(f"k{i}", i) for i in range(30)])
    fragments = split_relation(rel, 3)
    whole = Counter(rel.rows_readonly())
    pieces = Counter()
    for fragment in fragments:
        pieces.update(fragment.rows_readonly())
    assert whole == pieces


def test_choose_split_atom_picks_largest(r, s):
    query = parse_query("Q(a, b, c) :- R(a, b), S(b, c)")
    assert choose_split_atom(query, {"R": r, "S": s}) == "R"


def test_split_bindings_shapes(r, s):
    query = parse_query("Q(a, b, c) :- R(a, b), S(b, c)")
    branches = split_bindings(query, {"R": r, "S": s}, 3)
    assert len(branches) == 3
    for branch in branches:
        assert set(branch) == {"R", "S"}
        assert branch["S"] is s            # non-split atoms share the object
    sizes = sum(len(branch["R"]) for branch in branches)
    assert sizes == len(r)


def test_split_bindings_unknown_atom(r, s):
    query = parse_query("Q(a, b, c) :- R(a, b), S(b, c)")
    with pytest.raises(QueryError):
        split_bindings(query, {"R": r, "S": s}, 2, atom="T")


def test_merge_branches_empty_errors():
    with pytest.raises(QueryError):
        merge_branches([])


def test_byte_identity_against_unsplit_run(r, s):
    """canonical(merge(branch outputs)) == canonical(unsplit output), exactly."""
    query = parse_query("Q(a, b, c) :- R(a, b), S(b, c)")
    engine = Engine(4)
    engine.register(r)
    engine.register(s)
    whole = engine.query(query).output

    outputs = []
    for branch in split_bindings(query, {"R": r, "S": s}, 3):
        branch_engine = Engine(4)
        for name, rel in branch.items():
            branch_engine.register(rel, name=name)
        outputs.append(branch_engine.query(query).output)
    merged = merge_branches(outputs)
    assert merged.rows_readonly() == canonical(whole).rows_readonly()


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(-50, 50), st.integers(0, 8)),
        min_size=0, max_size=60,
    ),
    k=st.integers(1, 5),
)
def test_split_partition_property(rows, k):
    """Every row lands in exactly one fragment, for any k and contents."""
    rel = Relation("R", ["a", "b"], rows)
    fragments = split_relation(rel, k)
    assert len(fragments) == k
    pieces = Counter()
    for fragment in fragments:
        pieces.update(fragment.rows_readonly())
    assert pieces == Counter(rel.rows_readonly())
