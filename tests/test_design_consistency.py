"""DESIGN.md's experiment index must stay in sync with the repository."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestRowsEncapsulationLint:
    """No module outside data/relation.py may touch ``._rows`` directly.

    The dual-representation invariants (mutation token, borrowed flag,
    column cache) live entirely inside :class:`Relation`; a stray
    ``rel._rows`` bypasses all three and reintroduces exactly the stale-
    column bug this PR fixes. CI runs the same check as a grep step; this
    test makes it fail locally first. The rows-footgun test is the one
    sanctioned exception (it *installs* a guard on the slot on purpose)
    and tests are outside the scanned tree anyway.
    """

    def test_no_direct_rows_access_outside_relation(self):
        offenders = []
        for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
            if path.name == "relation.py" and path.parent.name == "data":
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if re.search(r"\._rows\b", line):
                    offenders.append(f"{path.relative_to(ROOT)}:{lineno}: {line.strip()}")
        assert not offenders, (
            "direct Relation._rows access outside data/relation.py "
            "(use rows()/rows_readonly()/columns()):\n" + "\n".join(offenders)
        )


class TestExperimentIndex:
    def test_every_indexed_bench_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert referenced, "DESIGN.md lists no bench targets"
        for name in referenced:
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_every_bench_is_indexed_or_support(self):
        design = (ROOT / "DESIGN.md").read_text()
        support = {"common.py", "bench_kernels.py"}
        for path in (ROOT / "benchmarks").glob("*.py"):
            if path.name in support:
                continue
            assert path.name in design, f"{path.name} missing from DESIGN.md"

    def test_cli_covers_all_table_benches(self):
        from repro.__main__ import _EXPERIMENTS

        modules = set(_EXPERIMENTS.values())
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            if path.stem == "bench_kernels":
                continue  # timing benchmarks, not a paper table
            assert path.stem in modules, f"{path.stem} not runnable via CLI"

    def test_experiments_md_covers_all_ids(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for experiment_id in ["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
                              "T9", "T10", "T11", "F1", "F2", "F3", "F4", "F5",
                              "F6", "F7", "X1", "X2"]:
            assert f"## {experiment_id} " in text, experiment_id

    def test_design_mentions_all_packages(self):
        design = (ROOT / "DESIGN.md").read_text()
        for package in ["repro.data", "repro.mpc", "repro.query", "repro.joins",
                        "repro.multiway", "repro.sorting", "repro.matmul",
                        "repro.theory", "repro.planner"]:
            assert package in design, package
