"""Tests for the three MPC matrix-multiplication algorithms."""

import numpy as np
import pytest

from repro.matmul.multi_round import square_block_costs, square_block_matmul
from repro.matmul.one_round import rectangle_block_costs, rectangle_block_matmul
from repro.matmul.sql import sql_matmul


@pytest.fixture
def matrices():
    rng = np.random.default_rng(7)
    a = rng.random((12, 12))
    b = rng.random((12, 12))
    return a, b


class TestSqlMatmul:
    def test_correct(self, matrices):
        a, b = matrices
        c, _ = sql_matmul(a, b, p=8)
        assert np.allclose(c, a @ b)

    def test_two_rounds(self, matrices):
        a, b = matrices
        _, stats = sql_matmul(a, b, p=8)
        assert stats.num_rounds == 2

    def test_sparse_input(self):
        a = np.zeros((10, 10))
        a[0, 3] = 2.0
        a[5, 7] = 1.5
        b = np.zeros((10, 10))
        b[3, 4] = 4.0
        c, stats = sql_matmul(a, b, p=4)
        assert np.allclose(c, a @ b)
        # Sparse inputs keep the join round tiny: 3 non-zeros total.
        assert stats.rounds[0].total == 3

    def test_aggregation_carries_all_products(self, matrices):
        # Slide 108's caveat: n³ partial products cross the network.
        a, b = matrices
        _, stats = sql_matmul(a, b, p=8)
        assert stats.rounds[1].total == 12**3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sql_matmul(np.zeros((3, 4)), np.zeros((3, 4)), p=2)


class TestRectangleBlock:
    def test_correct(self, matrices):
        a, b = matrices
        c, _ = rectangle_block_matmul(a, b, groups=3)
        assert np.allclose(c, a @ b)

    def test_single_round(self, matrices):
        a, b = matrices
        _, stats = rectangle_block_matmul(a, b, groups=4)
        assert stats.num_rounds == 1

    def test_load_is_2tn(self, matrices):
        a, b = matrices
        n, k = 12, 3
        _, stats = rectangle_block_matmul(a, b, groups=k)
        t = n // k
        assert stats.max_load == 2 * t * n

    def test_total_communication_scaling(self, matrices):
        # C = 2n³/t: halving t (doubling K) doubles communication.
        a, b = matrices
        _, s2 = rectangle_block_matmul(a, b, groups=2)
        _, s4 = rectangle_block_matmul(a, b, groups=4)
        assert s4.total_communication == pytest.approx(
            2 * s2.total_communication, rel=0.01
        )

    def test_groups_one_is_sequential(self, matrices):
        a, b = matrices
        c, stats = rectangle_block_matmul(a, b, groups=1)
        assert np.allclose(c, a @ b)
        assert stats.max_load == 2 * 12 * 12

    def test_invalid_groups(self, matrices):
        a, b = matrices
        with pytest.raises(ValueError):
            rectangle_block_matmul(a, b, groups=0)

    def test_costs_formula(self):
        costs = rectangle_block_costs(100, load=2000)
        assert costs["t"] == pytest.approx(10.0)
        assert costs["groups"] == pytest.approx(10.0)
        assert costs["communication"] == pytest.approx(100 * 2000)
        with pytest.raises(ValueError):
            rectangle_block_costs(100, load=10)


class TestSquareBlock:
    def test_correct_p_equals_h_squared(self, matrices):
        a, b = matrices
        c, _ = square_block_matmul(a, b, p=9, block_size=4)  # H = 3
        assert np.allclose(c, a @ b)

    def test_correct_p_less_than_h_squared(self, matrices):
        a, b = matrices
        c, _ = square_block_matmul(a, b, p=4, block_size=4)
        assert np.allclose(c, a @ b)

    def test_correct_with_replicas(self, matrices):
        # p = 2H² exercises the partial-sum merge (slides 119–121).
        a, b = matrices
        c, stats = square_block_matmul(a, b, p=18, block_size=4)
        assert np.allclose(c, a @ b)
        labels = [r.label for r in stats.rounds]
        assert "merge-partials" in labels

    def test_rounds_h_when_p_h_squared(self, matrices):
        a, b = matrices
        _, stats = square_block_matmul(a, b, p=9, block_size=4)  # H = 3
        assert stats.num_rounds == 3

    def test_replicas_halve_product_rounds(self, matrices):
        a, b = matrices
        _, s1 = square_block_matmul(a, b, p=9, block_size=4)
        _, s2 = square_block_matmul(a, b, p=27, block_size=4)
        product_rounds_1 = sum(1 for r in s1.rounds if r.label.startswith("block"))
        product_rounds_2 = sum(1 for r in s2.rounds if r.label.startswith("block"))
        assert product_rounds_2 < product_rounds_1

    def test_per_round_load_is_2b_squared(self, matrices):
        a, b = matrices
        bs = 4
        _, stats = square_block_matmul(a, b, p=9, block_size=bs)
        product_rounds = [r for r in stats.rounds if r.label.startswith("block")]
        assert all(r.max_load == 2 * bs * bs for r in product_rounds)

    def test_non_dividing_block_size(self):
        rng = np.random.default_rng(1)
        a = rng.random((10, 10))
        b = rng.random((10, 10))
        c, _ = square_block_matmul(a, b, p=9, block_size=4)  # H = ceil(10/4) = 3
        assert np.allclose(c, a @ b)

    def test_costs_formula(self):
        costs = square_block_costs(100, p=25, load=200)
        assert costs["block_size"] == pytest.approx(10.0)
        assert costs["h"] == pytest.approx(10.0)
        assert costs["communication"] == pytest.approx(2 * 100**3 / 10.0)
        with pytest.raises(ValueError):
            square_block_costs(10, p=4, load=1)


class TestCrossAlgorithmAgreement:
    def test_all_three_agree(self, matrices):
        a, b = matrices
        c_sql, _ = sql_matmul(a, b, p=6)
        c_rect, _ = rectangle_block_matmul(a, b, groups=3)
        c_square, _ = square_block_matmul(a, b, p=9, block_size=4)
        assert np.allclose(c_sql, c_rect)
        assert np.allclose(c_rect, c_square)

    def test_square_block_cheaper_communication_than_rectangle(self, matrices):
        # Slide 122/126: multi-round C = n³/√L beats one-round C = n⁴/L
        # at equal (small) load.
        a, b = matrices
        # At comparable load (rect L = 2·2·12 = 48, square L = 2·4² = 32)
        # the multi-round algorithm moves fewer elements in total.
        _, rect = rectangle_block_matmul(a, b, groups=6)
        _, square = square_block_matmul(a, b, p=9, block_size=4)
        assert square.max_load <= rect.max_load
        assert square.total_communication < rect.total_communication


class TestHighReplication:
    def test_p_much_larger_than_h_squared(self, matrices):
        # p = 4H² with H = 2: replicas exceed H, so each block's sum is
        # computed in a single product round plus the merge round.
        a, b = matrices
        c, stats = square_block_matmul(a, b, p=16, block_size=12)  # H = 2
        assert np.allclose(c, a @ b)
        product_rounds = [r for r in stats.rounds if r.label.startswith("block")]
        assert len(product_rounds) == 1

    def test_p_one_sequential(self, matrices):
        a, b = matrices
        c, stats = square_block_matmul(a, b, p=1, block_size=4)
        assert np.allclose(c, a @ b)
        assert stats.num_rounds == 3  # H rounds, all on one server
