"""Tests for non-square matrix multiplication (slide 127)."""

import numpy as np
import pytest

from repro.matmul.rectangular import (
    balanced_groups,
    rectangular_block_matmul,
    rectangular_costs,
)


class TestCorrectness:
    @pytest.mark.parametrize(
        "shape_a,shape_b,k1,k3",
        [
            ((8, 12), (12, 16), 2, 4),
            ((16, 4), (4, 8), 4, 2),
            ((5, 7), (7, 9), 2, 3),  # non-dividing groups
            ((6, 6), (6, 6), 3, 3),  # square special case
            ((1, 10), (10, 1), 1, 1),
        ],
    )
    def test_matches_numpy(self, shape_a, shape_b, k1, k3):
        rng = np.random.default_rng(0)
        a = rng.random(shape_a)
        b = rng.random(shape_b)
        c, _ = rectangular_block_matmul(a, b, row_groups=k1, col_groups=k3)
        assert np.allclose(c, a @ b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rectangular_block_matmul(np.zeros((3, 4)), np.zeros((5, 6)), 1, 1)

    def test_invalid_groups(self):
        a, b = np.zeros((4, 4)), np.zeros((4, 4))
        with pytest.raises(ValueError):
            rectangular_block_matmul(a, b, row_groups=0, col_groups=1)
        with pytest.raises(ValueError):
            rectangular_block_matmul(a, b, row_groups=1, col_groups=9)


class TestCosts:
    def test_single_round(self):
        rng = np.random.default_rng(1)
        a, b = rng.random((8, 6)), rng.random((6, 12))
        _, stats = rectangular_block_matmul(a, b, 2, 3)
        assert stats.num_rounds == 1

    def test_load_matches_formula(self):
        rng = np.random.default_rng(2)
        n1, n2, n3 = 12, 10, 8
        a, b = rng.random((n1, n2)), rng.random((n2, n3))
        k1, k3 = 3, 2
        _, stats = rectangular_block_matmul(a, b, k1, k3)
        predicted = rectangular_costs(n1, n2, n3, k1, k3)
        assert stats.max_load == predicted["load"]
        assert stats.total_communication == predicted["communication"]

    def test_reduces_to_square_costs(self):
        # n1 = n2 = n3 = n, t1 = t3 = t: L = 2tn like the square algorithm.
        costs = rectangular_costs(24, 24, 24, 4, 4)
        assert costs["load"] == 2 * 6 * 24


class TestBalancedGroups:
    def test_square_case_balanced(self):
        k1, k3 = balanced_groups(100, 100, 16)
        assert k1 == k3 == 4

    def test_lopsided_outputs(self):
        # Tall-skinny output: all budget goes to splitting the long side.
        k1, k3 = balanced_groups(1000, 10, 16)
        assert k1 > k3

    def test_respects_budget(self):
        for p in (3, 7, 12):
            k1, k3 = balanced_groups(50, 50, p)
            assert k1 * k3 <= p
