"""Tests for block partitioning helpers."""

import numpy as np
import pytest

from repro.matmul.blocks import (
    assemble_blocks,
    block_count,
    get_block,
    matrix_as_relation_rows,
)


class TestBlockCount:
    def test_exact_division(self):
        assert block_count(12, 4) == 3

    def test_ceiling(self):
        assert block_count(13, 4) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_count(10, 0)


class TestGetBlock:
    def test_interior_block(self):
        m = np.arange(16).reshape(4, 4)
        blk = get_block(m, 1, 0, 2)
        assert (blk == np.array([[8, 9], [12, 13]])).all()

    def test_boundary_padded(self):
        m = np.arange(9).reshape(3, 3)
        blk = get_block(m, 1, 1, 2)
        assert blk.shape == (2, 2)
        assert blk[0, 0] == m[2, 2]
        assert blk[1, 1] == 0  # padding

    def test_out_of_range(self):
        m = np.zeros((4, 4))
        with pytest.raises(IndexError):
            get_block(m, 2, 0, 2)


class TestAssemble:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        m = rng.random((7, 7))
        bs = 3
        h = block_count(7, bs)
        blocks = {(i, j): get_block(m, i, j, bs) for i in range(h) for j in range(h)}
        assert np.allclose(assemble_blocks(blocks, 7, bs), m)

    def test_out_of_grid_rejected(self):
        with pytest.raises(IndexError):
            assemble_blocks({(5, 5): np.zeros((2, 2))}, 4, 2)


class TestRelationRows:
    def test_triples(self):
        m = np.array([[0.0, 2.0], [3.0, 0.0]])
        rows = matrix_as_relation_rows(m)
        assert sorted(rows) == [(0, 1, 2.0), (1, 0, 3.0)]

    def test_dense_count(self):
        m = np.ones((3, 3))
        assert len(matrix_as_relation_rows(m)) == 9
