"""Property tests: all matmul algorithms agree with numpy on random shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matmul import (
    rectangular_block_matmul,
    sql_matmul,
    square_block_matmul,
)


class TestRandomShapes:
    @given(
        st.integers(2, 14),            # n
        st.integers(1, 4),             # block size divisor-ish
        st.integers(1, 20),            # p
        st.integers(0, 10**6),         # seed
    )
    @settings(max_examples=25, deadline=None)
    def test_square_block_always_correct(self, n, block_div, p, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.random((n, n)), rng.random((n, n))
        block = max(1, n // block_div)
        c, stats = square_block_matmul(a, b, p=p, block_size=block)
        assert np.allclose(c, a @ b)
        assert stats.num_rounds >= 1

    @given(
        st.integers(1, 10), st.integers(1, 10), st.integers(1, 10),
        st.integers(0, 10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_rectangular_always_correct(self, n1, n2, n3, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.random((n1, n2)), rng.random((n2, n3))
        k1 = max(1, min(n1, 3))
        k3 = max(1, min(n3, 2))
        c, _ = rectangular_block_matmul(a, b, row_groups=k1, col_groups=k3)
        assert np.allclose(c, a @ b)

    @given(st.integers(2, 10), st.integers(1, 8), st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_sql_always_correct(self, n, p, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.random((n, n)), rng.random((n, n))
        c, _ = sql_matmul(a, b, p=p)
        assert np.allclose(c, a @ b)

    @given(st.integers(2, 10), st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_zero_matrices(self, n, seed):
        del seed
        a = np.zeros((n, n))
        b = np.zeros((n, n))
        c, stats = sql_matmul(a, b, p=4)
        assert np.allclose(c, 0)
        assert stats.total_communication == 0  # nothing to join
