"""Tests for GHD constructions — the slide-95 width/depth trade-off."""

import math

import pytest

from repro.errors import DecompositionError
from repro.query.cq import Atom, ConjunctiveQuery, path_query, star_query, triangle_query
from repro.query.ghd import (
    GHD,
    GHDNode,
    expected_balanced_depth,
    path_balanced_ghd,
    path_chain_ghd,
    path_flat_ghd,
    width1_ghd,
)


def slide64_query() -> ConjunctiveQuery:
    return ConjunctiveQuery(
        [
            Atom("R1", ["A0", "A1"]),
            Atom("R2", ["A0", "A2"]),
            Atom("R3", ["A1", "A3"]),
            Atom("R4", ["A2", "A4"]),
            Atom("R5", ["A2", "A5"]),
        ]
    )


class TestWidth1:
    def test_slide64_width1(self):
        ghd = width1_ghd(slide64_query())
        assert ghd.width == 1
        assert ghd.verify()
        assert len(ghd.nodes()) == 5

    def test_star_depth_1(self):
        ghd = width1_ghd(star_query(5))
        assert ghd.width == 1
        assert ghd.depth == 1  # hub at the root, leaves below

    def test_cyclic_raises(self):
        with pytest.raises(DecompositionError):
            width1_ghd(triangle_query())

    def test_single_atom(self):
        ghd = width1_ghd(ConjunctiveQuery([Atom("R", ["x", "y"])]))
        assert ghd.depth == 0 and ghd.width == 1


class TestPathGHDs:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 16])
    def test_chain_shape(self, n):
        ghd = path_chain_ghd(n)
        assert ghd.width == 1
        assert ghd.depth == n - 1
        assert ghd.verify()

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 16])
    def test_flat_shape(self, n):
        ghd = path_flat_ghd(n)
        assert ghd.depth <= 1
        assert ghd.width == math.ceil((n + 1) / 2) or ghd.width == (n + 1) // 2 + 1
        assert ghd.verify()

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 16, 33])
    def test_balanced_shape(self, n):
        ghd = path_balanced_ghd(n)
        assert ghd.width <= 3
        assert ghd.depth <= max(1, 2 * math.ceil(math.log2(max(n, 2))))
        assert ghd.verify()

    def test_balanced_depth_grows_logarithmically(self):
        d8 = path_balanced_ghd(8).depth
        d64 = path_balanced_ghd(64).depth
        assert d64 <= d8 + 4  # log2(64/8) = 3 extra levels, plus slack

    def test_expected_balanced_depth_helper(self):
        assert expected_balanced_depth(3) == 0
        assert expected_balanced_depth(8) > 0


class TestVerifyRejectsBadGHDs:
    def test_missing_atom_coverage(self):
        q = path_query(2)
        root = GHDNode(bag=frozenset({"A0", "A1"}), cover=("R1",))
        assert not GHD(q, root).verify()

    def test_bag_not_in_cover(self):
        q = path_query(2)
        root = GHDNode(bag=frozenset({"A0", "A1", "A2"}), cover=("R1",))
        root.children.append(GHDNode(bag=frozenset({"A1", "A2"}), cover=("R2",)))
        assert not GHD(q, root).verify()

    def test_broken_running_intersection(self):
        q = path_query(3)
        # A1 appears at the root and a grandchild but not between.
        root = GHDNode(bag=frozenset({"A0", "A1"}), cover=("R1",))
        mid = GHDNode(bag=frozenset({"A2", "A3"}), cover=("R3",))
        leaf = GHDNode(bag=frozenset({"A1", "A2"}), cover=("R2",))
        mid.children.append(leaf)
        root.children.append(mid)
        assert not GHD(q, root).verify()

    def test_unknown_cover_name(self):
        q = path_query(2)
        root = GHDNode(bag=frozenset({"A0", "A1"}), cover=("ZZ",))
        assert not GHD(q, root).verify()
