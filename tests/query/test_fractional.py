"""Tests for the hypergraph LPs — the tutorial's worked τ*, ρ*, ψ* values."""

import math

import pytest

from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    cycle_query,
    path_query,
    spider_query,
    star_query,
    triangle_query,
    two_path_query,
)
from repro.query.fractional import (
    fractional_edge_cover,
    fractional_edge_packing,
    fractional_vertex_cover,
    maximal_load_over_packings,
    psi_star,
    rho_star,
    skew_free_load,
    skewed_load,
    tau_star,
    verify_cover,
    verify_packing,
)

APPROX = pytest.approx


class TestTauStar:
    def test_triangle_is_3_2(self):
        # Slide 41: τ*(Δ) = 3/2 via the all-halves packing.
        assert tau_star(triangle_query()) == APPROX(1.5)

    def test_two_way_join_is_1(self):
        # Slide 41: R(x,y) ⋈ S(y,z) has τ* = 1.
        q = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        assert tau_star(q) == APPROX(1.0)

    def test_two_path_is_2(self):
        # Slide 53: R(x), S(x,y), T(y) has τ* = 2 (pack R and T).
        assert tau_star(two_path_query()) == APPROX(2.0)

    def test_star_is_1(self):
        # All star atoms share A0, so packings sum to ≤ 1... except only
        # via A0: τ*(star-n) = 1.
        assert tau_star(star_query(4)) == APPROX(1.0)

    def test_path_alternation(self):
        # Path-n packs every other atom: τ* = ceil(n/2).
        assert tau_star(path_query(4)) == APPROX(2.0)
        assert tau_star(path_query(5)) == APPROX(3.0)

    def test_spider_is_3(self):
        # S1, S2, S3 are a matching of size 3, and no packing does better.
        assert tau_star(spider_query()) == APPROX(3.0)

    def test_long_cycle(self):
        # Even cycle: perfect matching of n/2 atoms -> τ* = n/2.
        assert tau_star(cycle_query(4)) == APPROX(2.0)
        # Odd cycle: all-halves -> n/2.
        assert tau_star(cycle_query(5)) == APPROX(2.5)

    def test_chain20_is_10(self):
        # Slide 62: R1..R20 path has τ* = 10.
        assert tau_star(path_query(20)) == APPROX(10.0)

    def test_duality_with_vertex_cover(self):
        for q in (triangle_query(), path_query(4), star_query(3), spider_query()):
            assert tau_star(q) == APPROX(fractional_vertex_cover(q).value)


class TestRhoStar:
    def test_two_path_is_1(self):
        # Slide 55: ρ* = 1 (cover S alone).
        assert rho_star(two_path_query()) == APPROX(1.0)

    def test_triangle_is_3_2(self):
        assert rho_star(triangle_query()) == APPROX(1.5)

    def test_star_is_n_minus_covered(self):
        # Star-n: A1..An each need their own atom -> ρ* = n... R1 covers
        # A0,A1; others cover A0,Ai. Must cover A1..An individually: ρ* = n.
        assert rho_star(star_query(3)) == APPROX(3.0)

    def test_spider_is_2(self):
        # Slide 61: ρ* = 2 (cover R1 and R2, which span all six variables).
        assert rho_star(spider_query()) == APPROX(2.0)


class TestPsiStar:
    def test_triangle_is_2(self):
        # Slide 51: ψ*(Δ) = 2 (residual with z heavy gives τ* = 2).
        assert psi_star(triangle_query()) == APPROX(2.0)

    def test_two_way_join_is_2(self):
        # Slide 51 second row: ψ* = 2 for R(x,y) ⋈ S(y,z) (y heavy ->
        # R(x) ⋈ S(z) packs both atoms).
        q = ConjunctiveQuery([Atom("R", ["x", "y"]), Atom("S", ["y", "z"])])
        assert psi_star(q) == APPROX(2.0)

    def test_two_path_is_2(self):
        # Slide 53: ψ* = 2 = τ* for R(x), S(x,y), T(y).
        assert psi_star(two_path_query()) == APPROX(2.0)

    def test_spider_is_3(self):
        # Slide 61: ψ* = 3.
        assert psi_star(spider_query()) == APPROX(3.0)

    def test_psi_at_least_tau(self):
        for q in (triangle_query(), path_query(3), star_query(3)):
            assert psi_star(q) >= tau_star(q) - 1e-9


class TestFeasibility:
    def test_packing_output_feasible(self):
        q = triangle_query()
        assert verify_packing(q, fractional_edge_packing(q).weights)

    def test_cover_output_feasible(self):
        q = triangle_query()
        assert verify_cover(q, fractional_edge_cover(q).weights)

    def test_verify_packing_rejects_overweight(self):
        q = triangle_query()
        assert not verify_packing(q, {"R": 1.0, "S": 1.0, "T": 1.0})

    def test_verify_cover_rejects_undercover(self):
        q = triangle_query()
        assert not verify_cover(q, {"R": 0.2, "S": 0.2, "T": 0.2})


class TestLoads:
    def test_skew_free_triangle_load(self):
        # Slide 41: L = N / p^(2/3).
        assert skew_free_load(triangle_query(), 1000, 8) == APPROX(1000 / 4.0)

    def test_skewed_triangle_load(self):
        # Slide 51: L = N / p^(1/2).
        assert skewed_load(triangle_query(), 1000, 16) == APPROX(250.0)

    def test_unequal_sizes_table_slide_42(self):
        """The slide 42-44 table: L = max over packings of four candidates."""
        q = triangle_query()
        p = 64
        # Balanced sizes -> geometric-mean row wins.
        sizes = {"R": 4096, "S": 4096, "T": 4096}
        load, packing = maximal_load_over_packings(q, sizes, p)
        assert load == APPROX((4096**3) ** (1 / 3) / p ** (2 / 3))
        assert packing == {"R": APPROX(0.5), "S": APPROX(0.5), "T": APPROX(0.5)}

    def test_unequal_sizes_one_huge_relation(self):
        # |R| >> |S|,|T|: the (1,0,0) packing dominates, L = |R|/p.
        q = triangle_query()
        p = 64
        sizes = {"R": 10**9, "S": 100, "T": 100}
        load, packing = maximal_load_over_packings(q, sizes, p)
        assert load == APPROX(10**9 / p)
        assert packing["R"] == APPROX(1.0)
        assert packing["S"] == APPROX(0.0, abs=1e-9)

    def test_load_formula_monotone_in_p(self):
        q = triangle_query()
        sizes = {"R": 10**6, "S": 10**6, "T": 10**6}
        l8, _ = maximal_load_over_packings(q, sizes, 8)
        l64, _ = maximal_load_over_packings(q, sizes, 64)
        assert l64 < l8


class TestWeightedLPs:
    def test_weighted_cover_is_log_agm(self):
        q = two_path_query()
        sizes = {"R": 10, "S": 1000, "T": 10}
        objective = {n: math.log(s) for n, s in sizes.items()}
        cover = fractional_edge_cover(q, objective)
        # Covering R and T alone (weight 1 each) costs log10 + log10 < log1000.
        assert math.exp(cover.value) == APPROX(100.0)
