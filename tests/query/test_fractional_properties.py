"""Property tests on the hypergraph LPs over random queries.

Invariants from LP theory the implementation must satisfy on *any*
query, not just the tutorial's examples:

- strong duality: τ* (edge packing) = fractional vertex cover optimum;
- ρ* ≥ τ*'s dual relationships: for any query, τ* ≤ ρ* when every
  vertex is covered... (not in general!) — instead we check the safe
  ones: packings are feasible, covers are feasible, ψ* ≥ τ*, and the
  AGM bound respects monotonicity in relation sizes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.agm import agm_bound
from repro.query.cq import Atom, ConjunctiveQuery
from repro.query.fractional import (
    fractional_edge_cover,
    fractional_edge_packing,
    fractional_vertex_cover,
    psi_star,
    tau_star,
    verify_cover,
    verify_packing,
)
from repro.query.shares import optimal_shares


@st.composite
def random_queries(draw):
    """Random connected-ish CQs: 2–5 atoms over ≤ 5 variables."""
    n_vars = draw(st.integers(2, 5))
    variables = [f"v{i}" for i in range(n_vars)]
    n_atoms = draw(st.integers(2, 5))
    atoms = []
    for i in range(n_atoms):
        arity = draw(st.integers(1, min(3, n_vars)))
        vs = draw(
            st.lists(
                st.sampled_from(variables),
                min_size=arity,
                max_size=arity,
                unique=True,
            )
        )
        atoms.append(Atom(f"S{i}", vs))
    return ConjunctiveQuery(atoms)


class TestLPProperties:
    @given(random_queries())
    @settings(max_examples=40, deadline=None)
    def test_packing_cover_feasible(self, query):
        packing = fractional_edge_packing(query)
        cover = fractional_edge_cover(query)
        assert verify_packing(query, packing.weights)
        assert verify_cover(query, cover.weights)

    @given(random_queries())
    @settings(max_examples=40, deadline=None)
    def test_strong_duality_tau_equals_vertex_cover(self, query):
        assert fractional_vertex_cover(query).value == pytest.approx(
            tau_star(query), abs=1e-6
        )

    @given(random_queries())
    @settings(max_examples=15, deadline=None)
    def test_psi_at_least_tau(self, query):
        assert psi_star(query) >= tau_star(query) - 1e-6

    @given(random_queries())
    @settings(max_examples=25, deadline=None)
    def test_tau_bounded_by_atom_count(self, query):
        tau = tau_star(query)
        assert 0 <= tau <= len(query.atoms) + 1e-9


class TestAgmProperties:
    @given(random_queries(), st.integers(1, 1000), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_agm_monotone_in_sizes(self, query, base, factor):
        small = {a.name: base for a in query.atoms}
        big = {a.name: base * factor for a in query.atoms}
        assert agm_bound(query, small) <= agm_bound(query, big) + 1e-6

    @given(random_queries(), st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_agm_at_most_product_of_sizes(self, query, n):
        sizes = {a.name: n for a in query.atoms}
        assert agm_bound(query, sizes) <= float(n) ** len(query.atoms) * (1 + 1e-9)


class TestShareProperties:
    @given(random_queries(), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_shares_respect_budget(self, query, p):
        import math

        sizes = {a.name: 100 for a in query.atoms}
        assignment = optimal_shares(query, sizes, p)
        assert math.prod(assignment.integral.values()) <= p
        assert all(s >= 1 for s in assignment.integral.values())
        assert sum(assignment.exponents.values()) <= 1.0 + 1e-6

    @given(random_queries())
    @settings(max_examples=20, deadline=None)
    def test_predicted_load_decreases_with_p(self, query):
        sizes = {a.name: 10_000 for a in query.atoms}
        l4 = optimal_shares(query, sizes, 4).predicted_load
        l64 = optimal_shares(query, sizes, 64).predicted_load
        assert l64 <= l4 + 1e-6
