"""Tests for hypergraphs, GYO, and join trees."""

import pytest

from repro.errors import DecompositionError
from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    cycle_query,
    path_query,
    star_query,
    triangle_query,
    two_path_query,
)
from repro.query.hypergraph import (
    Hypergraph,
    is_acyclic,
    join_tree,
    verify_join_tree,
)


class TestHypergraph:
    def test_of_query(self):
        h = Hypergraph.of(triangle_query())
        assert h.vertices == {"x", "y", "z"}
        assert h.edges["R"] == frozenset({"x", "y"})

    def test_edges_with(self):
        h = Hypergraph.of(triangle_query())
        assert sorted(h.edges_with("x")) == ["R", "T"]


class TestAcyclicity:
    def test_triangle_is_cyclic(self):
        assert not is_acyclic(triangle_query())

    def test_longer_cycles_are_cyclic(self):
        for n in (4, 5, 6):
            assert not is_acyclic(cycle_query(n))

    def test_paths_are_acyclic(self):
        for n in (1, 2, 3, 7):
            assert is_acyclic(path_query(n))

    def test_stars_are_acyclic(self):
        for n in (1, 2, 5):
            assert is_acyclic(star_query(n))

    def test_two_path_is_acyclic(self):
        assert is_acyclic(two_path_query())

    def test_slide64_query_is_acyclic(self):
        q = ConjunctiveQuery(
            [
                Atom("R1", ["A0", "A1"]),
                Atom("R2", ["A0", "A2"]),
                Atom("R3", ["A1", "A3"]),
                Atom("R4", ["A2", "A4"]),
                Atom("R5", ["A2", "A5"]),
            ]
        )
        assert is_acyclic(q)

    def test_cyclic_core_with_pendant_is_cyclic(self):
        q = ConjunctiveQuery(
            list(triangle_query().atoms) + [Atom("U", ["x", "w"])]
        )
        assert not is_acyclic(q)


class TestJoinTree:
    def test_cyclic_raises(self):
        with pytest.raises(DecompositionError):
            join_tree(triangle_query())

    def test_path_join_tree_valid(self):
        q = path_query(5)
        parent = join_tree(q)
        assert verify_join_tree(q, parent)

    def test_star_join_tree_valid(self):
        q = star_query(5)
        parent = join_tree(q)
        assert verify_join_tree(q, parent)

    def test_slide64_join_tree_valid(self):
        q = ConjunctiveQuery(
            [
                Atom("R1", ["A0", "A1"]),
                Atom("R2", ["A0", "A2"]),
                Atom("R3", ["A1", "A3"]),
                Atom("R4", ["A2", "A4"]),
                Atom("R5", ["A2", "A5"]),
            ]
        )
        parent = join_tree(q)
        assert verify_join_tree(q, parent)

    def test_single_atom_tree(self):
        q = ConjunctiveQuery([Atom("R", ["x"])])
        assert join_tree(q) == {"R": "R"}

    def test_exactly_one_root(self):
        parent = join_tree(path_query(4))
        roots = [n for n, p in parent.items() if p == n]
        assert len(roots) == 1


class TestVerifyJoinTree:
    def test_rejects_bad_tree(self):
        q = path_query(3)
        # R1 - R3 adjacency breaks running intersection for A1/A2.
        bad = {"R1": "R3", "R2": "R1", "R3": "R3"}
        assert not verify_join_tree(q, bad)

    def test_rejects_wrong_nodes(self):
        q = path_query(2)
        assert not verify_join_tree(q, {"R1": "R1"})

    def test_rejects_two_roots(self):
        q = path_query(2)
        assert not verify_join_tree(q, {"R1": "R1", "R2": "R2"})

    def test_accepts_any_orientation_of_path(self):
        q = path_query(3)
        chain = {"R3": "R3", "R2": "R3", "R1": "R2"}
        assert verify_join_tree(q, chain)
