"""Tests for the AGM bound."""

import pytest

from repro.data.generators import uniform_relation
from repro.data.graphs import random_edges, triangle_relations
from repro.query.agm import agm_bound, agm_bound_equal, output_within_agm
from repro.query.cq import star_query, triangle_query, two_path_query

APPROX = pytest.approx


class TestAgmBound:
    def test_triangle_equal(self):
        # |OUT| ≤ N^(3/2) (slide 55 with ρ* = 3/2).
        assert agm_bound_equal(triangle_query(), 10**4) == APPROX(10**6, rel=1e-6)

    def test_two_path_equal(self):
        # ρ* = 1: |OUT| ≤ N.
        assert agm_bound_equal(two_path_query(), 500) == APPROX(500, rel=1e-6)

    def test_unequal_sizes(self):
        # Cover chooses the cheaper option: R and T vs S.
        sizes = {"R": 10, "S": 10**6, "T": 20}
        assert agm_bound(two_path_query(), sizes) == APPROX(200, rel=1e-6)

    def test_empty_relation_zero_bound(self):
        sizes = {"R": 0, "S": 10, "T": 10}
        assert agm_bound(two_path_query(), sizes) == 0.0

    def test_star(self):
        # ρ*(star-3) = 3: bound is N^3.
        assert agm_bound_equal(star_query(3), 10) == APPROX(1000, rel=1e-6)


class TestAgmHoldsEmpirically:
    def test_triangle_output_respects_bound(self):
        edges = random_edges(300, 40, seed=3)
        r, s, t = triangle_relations(edges)
        out = r.join(s).join(t)
        q = triangle_query()
        sizes = {"R": len(r), "S": len(s), "T": len(t)}
        assert output_within_agm(q, sizes, len(out))

    def test_two_path_output_respects_bound(self):
        r = uniform_relation("R", ["x", "y"], 200, 30, seed=1)
        s = uniform_relation("S", ["y", "z"], 200, 30, seed=2)
        out = r.join(s)
        q = two_path_query()
        # two_path_query is R(x), S(x,y), T(y); use the 2-way join query shape
        # R(x,y) ⋈ S(y,z) instead: ρ* = 2 -> bound N².
        from repro.query.cq import two_way_join

        assert output_within_agm(
            two_way_join(), {"R": len(r), "S": len(s)}, len(out)
        )
        del q

    def test_bound_tight_for_cartesian_worst_case(self):
        # All-same-join-key data achieves |OUT| = N² for the 2-way join
        # while AGM(ρ*=2) = N² — the bound is tight.
        from repro.data.generators import single_value_relation
        from repro.query.cq import two_way_join

        n = 40
        r = single_value_relation("R", ["x", "y"], n, "y")
        s = single_value_relation("S", ["y", "z"], n, "y")
        out = r.join(s)
        assert len(out) == n * n
        assert agm_bound(two_way_join(), {"R": n, "S": n}) == APPROX(n * n, rel=1e-6)
