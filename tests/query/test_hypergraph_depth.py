"""Tests for join-tree depth minimization (the GYM round optimization)."""

import pytest

from repro.query.cq import Atom, ConjunctiveQuery, path_query, star_query
from repro.query.hypergraph import join_tree, minimize_depth, verify_join_tree


def tree_depth(parent: dict[str, str]) -> int:
    def depth_of(node: str) -> int:
        d = 0
        while parent[node] != node:
            node = parent[node]
            d += 1
        return d

    return max(depth_of(n) for n in parent)


class TestMinimizeDepth:
    def test_star_flattens_to_depth_one(self):
        q = star_query(6)
        flat = minimize_depth(q, join_tree(q))
        assert verify_join_tree(q, flat)
        assert tree_depth(flat) == 1

    def test_path_halves_by_center_rooting(self):
        # A path's running intersection forces a chain shape, but rooting
        # at the center still halves the depth: ⌈(n−1)/2⌉.
        q = path_query(5)
        flat = minimize_depth(q, join_tree(q))
        assert verify_join_tree(q, flat)
        assert tree_depth(flat) == 2

    def test_never_increases_depth(self):
        for q in (star_query(4), path_query(4)):
            original = join_tree(q)
            flat = minimize_depth(q, original)
            assert tree_depth(flat) <= tree_depth(original)

    def test_mixed_tree(self):
        # Slide 64's query: two branches under A0; depth can reach 2.
        q = ConjunctiveQuery(
            [
                Atom("R1", ["A0", "A1"]),
                Atom("R2", ["A0", "A2"]),
                Atom("R3", ["A1", "A3"]),
                Atom("R4", ["A2", "A4"]),
                Atom("R5", ["A2", "A5"]),
            ]
        )
        flat = minimize_depth(q, join_tree(q))
        assert verify_join_tree(q, flat)
        assert tree_depth(flat) <= 2

    def test_result_always_valid(self):
        q = star_query(3)
        flat = minimize_depth(q, join_tree(q))
        # Exactly one root, every node present.
        roots = [n for n, p in flat.items() if n == p]
        assert len(roots) == 1
        assert set(flat) == {a.name for a in q.atoms}
