"""Tests for conjunctive queries and residuals."""

import pytest

from repro.data.relation import Relation
from repro.errors import QueryError
from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    cycle_query,
    path_query,
    spider_query,
    star_query,
    triangle_query,
    two_path_query,
    two_way_join,
)


class TestAtom:
    def test_basic(self):
        a = Atom("R", ["x", "y"])
        assert a.arity == 2
        assert a.var_set() == frozenset({"x", "y"})
        assert str(a) == "R(x, y)"

    def test_repeated_variable_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ["x", "x"])

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", [])


class TestConjunctiveQuery:
    def test_variable_order_first_occurrence(self):
        q = triangle_query()
        assert q.variables == ("x", "y", "z")

    def test_duplicate_atom_names_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([Atom("R", ["x"]), Atom("R", ["y"])])

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([])

    def test_atom_lookup(self):
        q = triangle_query()
        assert q.atom("S").variables == ("y", "z")
        with pytest.raises(QueryError):
            q.atom("Z")

    def test_atoms_with(self):
        q = triangle_query()
        assert [a.name for a in q.atoms_with("x")] == ["R", "T"]


class TestResidual:
    def test_triangle_residual_one_heavy(self):
        # Slide 49: z heavy -> R(x,y) ⋈ S(y) ⋈ T(x).
        q = triangle_query().residual(["z"])
        assert [str(a) for a in q.atoms] == ["R(x, y)", "S(y)", "T(x)"]

    def test_triangle_residual_two_heavy(self):
        # Slide 50: y, z heavy -> R(x) ⋈ T(x)  (S vanishes).
        q = triangle_query().residual(["y", "z"])
        assert [str(a) for a in q.atoms] == ["R(x)", "T(x)"]

    def test_all_bound_raises(self):
        with pytest.raises(QueryError):
            triangle_query().residual(["x", "y", "z"])

    def test_unknown_variable_raises(self):
        with pytest.raises(QueryError):
            triangle_query().residual(["w"])


class TestEvaluate:
    def test_two_way(self):
        q = two_way_join()
        r = Relation("R", ["x", "y"], [(1, 2), (3, 4)])
        s = Relation("S", ["y", "z"], [(2, 9), (2, 8)])
        out = q.evaluate({"R": r, "S": s})
        assert sorted(out.rows()) == [(1, 2, 8), (1, 2, 9)]
        assert out.schema.attributes == ("x", "y", "z")

    def test_triangle(self):
        q = triangle_query()
        e = [(0, 1), (1, 2), (2, 0)]
        r = Relation("R", ["x", "y"], e)
        s = Relation("S", ["y", "z"], e)
        t = Relation("T", ["z", "x"], e)
        out = q.evaluate({"R": r, "S": s, "T": t})
        assert len(out) == 3  # three rotations of the one cycle

    def test_attribute_reordering(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"])])
        r = Relation("R", ["y", "x"], [(2, 1)])
        out = q.evaluate({"R": r})
        assert out.rows() == [(1, 2)]

    def test_missing_relation_raises(self):
        with pytest.raises(QueryError):
            two_way_join().evaluate({"R": Relation("R", ["x", "y"])})

    def test_wrong_attributes_raises(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"])])
        with pytest.raises(QueryError):
            q.evaluate({"R": Relation("R", ["a", "b"])})


class TestQueryFactories:
    def test_two_path(self):
        q = two_path_query()
        assert [a.name for a in q.atoms] == ["R", "S", "T"]
        assert q.variables == ("x", "y")

    def test_path(self):
        q = path_query(3)
        assert [str(a) for a in q.atoms] == ["R1(A0, A1)", "R2(A1, A2)", "R3(A2, A3)"]

    def test_star(self):
        q = star_query(3)
        assert all("A0" in a.variables for a in q.atoms)

    def test_cycle_3_is_triangle_shape(self):
        q = cycle_query(3)
        assert len(q.atoms) == 3 and len(q.variables) == 3

    def test_cycle_too_short_raises(self):
        with pytest.raises(QueryError):
            cycle_query(2)

    def test_path_star_invalid(self):
        with pytest.raises(QueryError):
            path_query(0)
        with pytest.raises(QueryError):
            star_query(0)

    def test_spider(self):
        q = spider_query()
        assert len(q.atoms) == 5 and len(q.variables) == 6
