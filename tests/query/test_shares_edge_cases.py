"""Edge cases of share optimization: fallback rounding and odd budgets."""

import math

import pytest

from repro.query.cq import star_query
from repro.query.shares import optimal_shares


class TestFallbackRounding:
    def test_fallback_path_respects_budget(self):
        # Force the greedy floor-rounding path by disabling enumeration.
        q = star_query(6)  # 7 variables
        sizes = {a.name: 10_000 for a in q.atoms}
        assignment = optimal_shares(q, sizes, p=64, max_enumeration=0)
        assert math.prod(assignment.integral.values()) <= 64
        assert all(s >= 1 for s in assignment.integral.values())

    def test_fallback_close_to_enumerated(self):
        q = star_query(3)
        sizes = {a.name: 10_000 for a in q.atoms}
        enumerated = optimal_shares(q, sizes, p=32)
        fallback = optimal_shares(q, sizes, p=32, max_enumeration=0)
        assert fallback.integral_load <= 4 * enumerated.integral_load


class TestOddBudgets:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 11, 13, 17, 31])
    def test_prime_budgets(self, p):
        from repro.query.cq import triangle_query

        q = triangle_query()
        sizes = {a.name: 1000 for a in q.atoms}
        assignment = optimal_shares(q, sizes, p)
        assert math.prod(assignment.integral.values()) <= p

    def test_star_gives_hub_everything(self):
        # Star queries hash on the hub variable only: share(A0) = p.
        q = star_query(3)
        sizes = {a.name: 1000 for a in q.atoms}
        assignment = optimal_shares(q, sizes, p=16)
        assert assignment.integral["A0"] == 16
        assert all(
            assignment.integral[v] == 1 for v in q.variables if v != "A0"
        )
