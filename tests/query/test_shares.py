"""Tests for HyperCube share optimization."""

import math

import pytest

from repro.errors import OptimizationError
from repro.query.cq import star_query, triangle_query, two_way_join
from repro.query.fractional import maximal_load_over_packings
from repro.query.shares import equal_size_shares, optimal_shares

APPROX = pytest.approx


class TestFractionalShares:
    def test_triangle_equal_sizes_cube(self):
        # Slide 35: p^(1/3) × p^(1/3) × p^(1/3).
        a = equal_size_shares(triangle_query(), n=10**6, p=64)
        assert a.fractional["x"] == APPROX(4.0, rel=1e-4)
        assert a.fractional["y"] == APPROX(4.0, rel=1e-4)
        assert a.fractional["z"] == APPROX(4.0, rel=1e-4)

    def test_triangle_predicted_load(self):
        # Slide 41: L = N / p^(2/3).
        a = equal_size_shares(triangle_query(), n=10**6, p=64)
        assert a.predicted_load == APPROX(10**6 / 16.0, rel=1e-4)

    def test_two_way_join_hashes_on_y_only(self):
        # τ* = 1: all budget goes to the shared variable y.
        a = equal_size_shares(two_way_join(), n=10**6, p=32)
        assert a.fractional["y"] == APPROX(32.0, rel=1e-4)
        assert a.fractional["x"] == APPROX(1.0, rel=1e-3)
        assert a.fractional["z"] == APPROX(1.0, rel=1e-3)

    def test_small_relation_degenerates_share(self):
        # Slide 44: when |R| is small its private variable gets share 1
        # and the plan degenerates to broadcasting R.
        q = triangle_query()
        sizes = {"R": 100, "S": 10**6, "T": 10**6}
        a = optimal_shares(q, sizes, p=64)
        # y is R∩S's variable; z is only in S and T. |R| small makes the
        # x share ~1... the load formula of slide 44 is |S||T| driven.
        load, packing = maximal_load_over_packings(q, sizes, 64)
        assert a.predicted_load == APPROX(load, rel=1e-3)

    def test_predicted_load_matches_packing_formula(self):
        # LP duality (slide 40): share-LP optimum = max over packings.
        q = triangle_query()
        for sizes in (
            {"R": 4096, "S": 4096, "T": 4096},
            {"R": 10**8, "S": 10**4, "T": 10**4},
            {"R": 10**6, "S": 10**5, "T": 10**4},
        ):
            a = optimal_shares(q, sizes, p=512)
            load, _ = maximal_load_over_packings(q, sizes, 512)
            assert a.predicted_load == APPROX(load, rel=1e-3)

    def test_budget_respected(self):
        a = equal_size_shares(star_query(4), n=10**5, p=100)
        total_exponent = sum(a.exponents.values())
        assert total_exponent <= 1.0 + 1e-6


class TestIntegralShares:
    def test_product_at_most_p(self):
        for p in (7, 8, 60, 64, 100):
            a = equal_size_shares(triangle_query(), n=10**6, p=p)
            assert math.prod(a.integral.values()) <= p

    def test_perfect_cube(self):
        a = equal_size_shares(triangle_query(), n=10**6, p=27)
        assert sorted(a.integral.values()) == [3, 3, 3]

    def test_integral_load_close_to_fractional(self):
        a = equal_size_shares(triangle_query(), n=10**6, p=64)
        assert a.integral_load == APPROX(a.predicted_load, rel=1e-6)

    def test_shares_at_least_one(self):
        a = optimal_shares(
            triangle_query(), {"R": 10, "S": 10**6, "T": 10**6}, p=16
        )
        assert all(s >= 1 for s in a.integral.values())

    def test_extents_order(self):
        q = triangle_query()
        a = equal_size_shares(q, n=1000, p=8)
        assert a.extents(q.variables) == tuple(a.integral[v] for v in ("x", "y", "z"))

    def test_p_one_all_shares_one(self):
        a = equal_size_shares(triangle_query(), n=100, p=1)
        assert all(s == 1 for s in a.integral.values())

    def test_invalid_p(self):
        with pytest.raises(OptimizationError):
            equal_size_shares(triangle_query(), n=10, p=0)
