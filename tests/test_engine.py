"""Tests for the Engine facade and the query parser."""

import pytest

from repro.data.generators import single_value_relation, uniform_relation
from repro.data.graphs import count_triangles, random_edges, triangle_relations
from repro.data.relation import Relation
from repro.engine import Engine
from repro.errors import QueryError
from repro.query.parser import parse_query


class TestParser:
    def test_body_only(self):
        q = parse_query("R(x, y), S(y, z)")
        assert [str(a) for a in q.atoms] == ["R(x, y)", "S(y, z)"]
        assert q.variables == ("x", "y", "z")

    def test_with_head(self):
        q = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x)")
        assert len(q.atoms) == 3

    def test_unicode_names(self):
        q = parse_query("Δ(x,y,z) :- R(x,y), S(y,z), T(z,x)")
        assert q.variables == ("x", "y", "z")

    def test_whitespace_insensitive(self):
        q = parse_query("  R( x ,y ) ,S(y,  z)  ")
        assert q.variables == ("x", "y", "z")

    def test_head_missing_variable_rejected(self):
        with pytest.raises(QueryError):
            parse_query("Q(x) :- R(x, y)")

    def test_head_extra_variable_rejected(self):
        with pytest.raises(QueryError):
            parse_query("Q(x, y, w) :- R(x, y)")

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT * FROM R")
        with pytest.raises(QueryError):
            parse_query("R(x, y) S(y, z)")  # missing comma
        with pytest.raises(QueryError):
            parse_query("R()")
        with pytest.raises(QueryError):
            parse_query("")


class TestEngineCatalog:
    def test_register_and_lookup(self):
        engine = Engine(p=4)
        r = Relation("R", ["x", "y"], [(1, 2)])
        engine.register(r)
        assert engine.relation("R") is r
        assert engine.names() == ["R"]

    def test_register_under_alias(self):
        engine = Engine(p=4)
        engine.register(Relation("R", ["x", "y"], [(1, 2)]), name="Edges")
        assert engine.names() == ["Edges"]

    def test_missing_relation_raises(self):
        with pytest.raises(QueryError):
            Engine(p=4).relation("Nope")

    def test_invalid_p(self):
        with pytest.raises(QueryError):
            Engine(p=0)


class TestEngineQueries:
    def test_two_way_join(self):
        engine = Engine(p=8)
        r = uniform_relation("R", ["x", "y"], 300, 60, seed=1)
        s = uniform_relation("S", ["y", "z"], 300, 60, seed=2)
        engine.register(r)
        engine.register(s)
        result = engine.query("R(x, y), S(y, z)")
        assert sorted(result.output.rows()) == sorted(r.join(s).rows())
        assert result.plan.algorithm == "hash"
        assert result.rounds >= 1

    def test_triangle_query(self):
        engine = Engine(p=8)
        edges = random_edges(200, 30, seed=3)
        r, s, t = triangle_relations(edges)
        for rel in (r, s, t):
            engine.register(rel)
        result = engine.query("Δ(x,y,z) :- R(x,y), S(y,z), T(z,x)")
        assert len(result.output) == count_triangles(edges)
        assert result.plan.algorithm in ("hypercube", "skewhc")

    def test_single_atom_scan(self):
        engine = Engine(p=4)
        engine.register(Relation("R", ["x", "y"], [(1, 2), (3, 4)]))
        result = engine.query("R(x, y)")
        assert sorted(result.output.rows()) == [(1, 2), (3, 4)]
        assert result.load == 0  # no communication needed

    def test_skewed_join_picks_skew_algorithm(self):
        engine = Engine(p=8)
        engine.register(single_value_relation("R", ["x", "y"], 150, "y"))
        engine.register(single_value_relation("S", ["y", "z"], 150, "y"))
        result = engine.query("R(x,y), S(y,z)")
        assert result.plan.algorithm == "skew"
        assert len(result.output) == 150 * 150

    def test_acyclic_multiway_uses_gym(self):
        engine = Engine(p=16)
        for i in range(1, 4):
            engine.register(
                uniform_relation(f"R{i}", [f"A{i-1}", f"A{i}"], 200, 300, seed=i)
            )
        result = engine.query("R1(A0,A1), R2(A1,A2), R3(A2,A3)")
        assert result.plan.algorithm == "gym"

    def test_query_object_accepted(self):
        from repro.query.cq import two_way_join

        engine = Engine(p=4)
        engine.register(uniform_relation("R", ["x", "y"], 50, 20, seed=4))
        engine.register(uniform_relation("S", ["y", "z"], 50, 20, seed=5))
        result = engine.query(two_way_join())
        expected = engine.relation("R").join(engine.relation("S"))
        assert sorted(result.output.rows()) == sorted(expected.rows())

    def test_unregistered_atom_raises(self):
        engine = Engine(p=4)
        engine.register(Relation("R", ["x", "y"], [(1, 2)]))
        with pytest.raises(QueryError):
            engine.query("R(x,y), S(y,z)")

    def test_mismatched_schema_raises(self):
        engine = Engine(p=4)
        engine.register(Relation("R", ["a", "b"], [(1, 2)]))
        engine.register(Relation("S", ["y", "z"], [(2, 3)]))
        with pytest.raises(QueryError):
            engine.query("R(x,y), S(y,z)")


class TestAlignCache:
    """The memoized input alignment (perf fix): correctness over reuse."""

    def _engine(self, p=4):
        engine = Engine(p=p)
        engine.register(uniform_relation("R", ["b", "a"], 60, 20, seed=1))
        engine.register(uniform_relation("S", ["b", "z"], 60, 20, seed=2))
        return engine

    def test_first_run_misses_then_hits(self):
        engine = self._engine()
        first = engine.query("R(a,b), S(b,z)")
        assert first.align_cache_hits == 0
        second = engine.query("R(a,b), S(b,z)")
        assert second.align_cache_hits == 2  # both atoms served from cache
        assert sorted(second.output.rows()) == sorted(first.output.rows())

    def test_register_invalidates(self):
        engine = self._engine()
        first = engine.query("R(a,b), S(b,z)")
        engine.register(uniform_relation("R", ["b", "a"], 80, 20, seed=9))
        refreshed = engine.query("R(a,b), S(b,z)")
        assert refreshed.align_cache_hits == 0  # replaced R cleared the cache
        assert sorted(refreshed.output.rows()) != sorted(first.output.rows())
        verify = engine.query("R(a,b), S(b,z)", verify=True)
        assert verify.align_cache_hits > 0

    def test_cached_result_matches_oracle(self):
        engine = self._engine()
        engine.query("R(a,b), S(b,z)")
        engine.query("R(a,b), S(b,z)", verify=True)  # oracle cross-check

    def test_distinct_alignments_cached_separately(self):
        engine = self._engine()
        engine.register(Relation("T", ["u", "v"], [(1, 2), (2, 3)]))
        first = engine.query("T(u,v)")
        assert first.align_cache_hits == 0
        # A different variable order over the same relation is a new entry.
        swapped = engine.query("T(v,u)")
        assert swapped.align_cache_hits == 0
        again = engine.query("T(v,u)")
        assert again.align_cache_hits == 1
        assert sorted(swapped.output.rows()) == [(2, 1), (3, 2)]

    def test_lru_eviction_bounds_the_cache(self):
        engine = Engine(p=2)
        engine._ALIGN_CACHE_SIZE = 4
        for i in range(8):
            engine.register(Relation(f"T{i}", ["u", "v"], [(i, i + 1)]))
        for i in range(8):
            engine.query(f"T{i}(u,v)")
        assert len(engine._align_cache) <= 4
        # Oldest entries evicted; the most recent still hit.
        recent = engine.query("T7(u,v)")
        assert recent.align_cache_hits == 1

    def test_mutating_a_registered_relation_between_queries(self):
        # Regression: the cache used to key on (name, id, schema) only,
        # so add()/extend() after a query kept serving the old aligned
        # projection — the second query answered over vanished data.
        engine = Engine(p=4)
        engine.register(Relation("T", ["v", "u"], [(2, 1)]))
        first = engine.query("T(u,v)")
        assert sorted(first.output.rows()) == [(1, 2)]
        engine.relation("T").add((4, 3))
        second = engine.query("T(u,v)")
        assert second.align_cache_hits == 0  # token bump = new cache key
        assert sorted(second.output.rows()) == [(1, 2), (3, 4)]
        engine.relation("T").extend([(6, 5)])
        engine.query("T(u,v)", verify=True)  # oracle agrees post-mutation

    def test_mutated_two_way_join_inputs_verify(self):
        engine = self._engine()
        engine.query("R(a,b), S(b,z)")
        engine.relation("R").add((1, 99))
        engine.relation("S").extend([(1, 7), (1, 8)])
        after = engine.query("R(a,b), S(b,z)", verify=True)
        assert after.align_cache_hits == 0
        assert (99, 1, 7) in after.output.rows_readonly()

    def test_borrowed_relation_is_never_cached(self):
        engine = Engine(p=2)
        rows = [(2, 1)]
        engine.register(Relation.wrap("T", ["v", "u"], rows))
        engine.query("T(u,v)")
        rows[0] = (9, 8)  # in-place: invisible to any token
        fresh = engine.query("T(u,v)")
        assert fresh.align_cache_hits == 0
        assert sorted(fresh.output.rows()) == [(8, 9)]


class TestSharedAlignCache:
    """``align_with`` engines borrow one alignment memo (service split fix).

    The service's split path spins up a throwaway engine per branch;
    without sharing, each branch stored its own detached copy of every
    unsplit input's alignment and the hits landed in counters nobody
    read. Sharing must dedupe the storage and single-count the hits —
    without ever letting a borrower wipe the owner's memo.
    """

    def _owner(self):
        owner = Engine(p=4)
        owner.register(uniform_relation("R", ["b", "a"], 60, 20, seed=1))
        owner.register(uniform_relation("S", ["b", "z"], 60, 20, seed=2))
        return owner

    def _borrower(self, owner, bindings=None):
        branch = Engine(p=4, align_with=owner)
        for name, rel in (bindings or owner._relations).items():
            branch.register(rel, name=name)
        return branch

    def test_borrower_stores_into_the_owner_memo(self):
        owner = self._owner()
        branch = self._borrower(owner)
        first = branch.query("R(a,b), S(b,z)")
        assert first.align_cache_hits == 0
        assert len(owner._align_cache) == 2  # stored once, in the owner
        assert not hasattr(branch, "_align_cache")  # no private copy

    def test_hits_cross_engines_and_single_count(self):
        owner = self._owner()
        owner.query("R(a,b), S(b,z)")  # owner warms both alignments
        hits_before = owner._align_hits
        branches = [self._borrower(owner) for _ in range(3)]
        for branch in branches:
            result = branch.query("R(a,b), S(b,z)")
            assert result.align_cache_hits == 2  # both atoms from the memo
        # All six hits landed in the one counter the service reports.
        assert owner._align_hits - hits_before == 6
        assert len(owner._align_cache) == 2  # still stored exactly once

    def test_borrower_register_does_not_wipe_the_owner(self):
        owner = self._owner()
        owner.query("R(a,b), S(b,z)")
        assert len(owner._align_cache) == 2
        # Branch engines register their (partly shared) bindings on
        # construction; that must not clear the shared memo.
        branch = self._borrower(owner)
        assert len(owner._align_cache) == 2
        assert branch.query("R(a,b), S(b,z)").align_cache_hits == 2

    def test_chained_align_with_resolves_to_the_root_owner(self):
        owner = self._owner()
        middle = self._borrower(owner)
        leaf = Engine(p=4, align_with=middle)
        assert leaf._align_owner is owner

    def test_owner_register_still_invalidates_for_borrowers(self):
        owner = self._owner()
        branch = self._borrower(owner)
        branch.query("R(a,b), S(b,z)")
        owner.register(uniform_relation("R", ["b", "a"], 80, 20, seed=9))
        fresh = self._borrower(owner)
        assert fresh.query("R(a,b), S(b,z)").align_cache_hits == 0
